#include "exec/hash_table.h"

namespace reldiv {

TupleHashTable::TupleHashTable(ExecContext* ctx, Arena* arena,
                               std::vector<size_t> key_indices,
                               size_t num_buckets)
    : ctx_(ctx), arena_(arena), key_indices_(std::move(key_indices)) {
  buckets_.assign(num_buckets == 0 ? 1 : num_buckets, nullptr);
}

size_t TupleHashTable::BucketsFor(uint64_t expected_entries) {
  const uint64_t target = expected_entries / 2;  // average bucket size 2
  size_t buckets = 16;
  while (buckets < target) buckets <<= 1;
  return buckets;
}

namespace {

size_t ApproxTupleBytes(const Tuple& tuple) {
  size_t bytes = 16 * tuple.size();
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.value(i).type() == ValueType::kString) {
      bytes += tuple.value(i).string_value().size();
    }
  }
  return bytes;
}

}  // namespace

Result<TupleHashTable::Entry*> TupleHashTable::InsertIntoBucket(
    Tuple tuple, uint64_t hash) {
  // Charge the chain element and an estimate of the tuple bytes to the
  // arena; tuple storage itself lives in the deque (strings need real
  // destructors), but the accounting must hit the shared pool.
  void* element_mem = arena_->Allocate(sizeof(Entry));
  if (element_mem == nullptr) {
    return Status::ResourceExhausted("hash table: memory pool exhausted");
  }
  if (arena_->Allocate(ApproxTupleBytes(tuple)) == nullptr) {
    return Status::ResourceExhausted("hash table: memory pool exhausted");
  }
  tuples_.push_back(std::move(tuple));
  const size_t bucket = hash % buckets_.size();
  Entry* entry = new (element_mem) Entry();
  entry->tuple = &tuples_.back();
  entry->hash = hash;
  entry->next = buckets_[bucket];
  buckets_[bucket] = entry;
  size_++;
  return entry;
}

Result<TupleHashTable::Entry*> TupleHashTable::Insert(Tuple tuple) {
  const uint64_t hash = HashKey(tuple, key_indices_);
  return InsertIntoBucket(std::move(tuple), hash);
}

Result<TupleHashTable::Entry*> TupleHashTable::FindOrInsert(Tuple tuple,
                                                            bool* inserted) {
  const uint64_t hash = HashKey(tuple, key_indices_);
  for (Entry* e = buckets_[hash % buckets_.size()]; e != nullptr;
       e = e->next) {
    ctx_->CountComparisons(1);
    if (e->hash == hash &&
        tuple.CompareProjected(key_indices_, *e->tuple, key_indices_) == 0) {
      *inserted = false;
      return e;
    }
  }
  *inserted = true;
  return InsertIntoBucket(std::move(tuple), hash);
}

}  // namespace reldiv
