#ifndef RELDIV_DIVISION_PARTITIONED_HASH_DIVISION_H_
#define RELDIV_DIVISION_PARTITIONED_HASH_DIVISION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metric_names.h"
#include "division/division.h"
#include "exec/exec_context.h"
#include "exec/operator.h"

namespace reldiv {

class HashDivisionCore;
class RecordFile;

/// Hash-division with hash-table-overflow management (§3.4): the inputs are
/// hash-partitioned into disjoint clusters spooled to temporary files and
/// processed one cluster per phase.
///
/// Quotient partitioning: the dividend is partitioned on the quotient
/// attrs; every phase divides one dividend cluster by the ENTIRE divisor,
/// whose table is built once and stays resident across phases. The final
/// quotient is the concatenation of the per-phase quotients.
///
/// Divisor partitioning: divisor and dividend are partitioned with the same
/// function on the divisor attrs. Each phase produces a quotient cluster
/// tagged with its phase number; a final collection phase divides the union
/// of the tagged clusters over the set of participating phase numbers —
/// "this problem is exactly the division problem again" — skipping step 1 of
/// hash-division because the phase tag directly indexes the bit map. Phases
/// whose divisor cluster is empty constrain nothing and are excluded from
/// the collection divisor.
///
/// Overflow recovery (§3.4's "overflow avoidance ... may fail"): the
/// partition count is a planning estimate, so a cluster can still outgrow
/// the memory budget at run time. Three recovery mechanisms compose:
///  - Quotient strategy: a dividend cluster whose quotient table overflows
///    is recursively split in two with a depth-salted hash and each half is
///    divided on its own (`repartitions` gauge).
///  - Quotient strategy: if the resident divisor table itself overflows,
///    quotient partitioning cannot help (the divisor table is per-phase
///    state it never shrinks), so the operator escalates to the combined
///    strategy (`escalations` gauge).
///  - Divisor / combined strategies: a per-phase overflow restarts the whole
///    run with twice the partitions (`restarts` gauge), bounded; clusters
///    halve in expectation each restart.
/// Only ResourceExhausted triggers recovery; any other failure (an I/O
/// fault, a corrupt page) propagates unchanged.
///
/// Intra-node parallelism: the per-cluster (quotient strategy) and per-phase
/// (divisor/combined strategies) loops run as morsels on the TaskScheduler,
/// one fragment per cluster/phase with a private ExecContext and
/// HashDivisionCore; quotient-strategy fragments borrow the one resident
/// divisor table read-only. The decomposition is the §3.4 partitioning
/// itself — fixed by num_partitions, never by worker count — and results
/// and counters are merged in cluster/phase order, so the quotient and all
/// Table 1 CPU counter totals of a SUCCESSFUL run are identical at any
/// RELDIV_THREADS. (When a run fails and restarts, the counted work of the
/// failed attempt depends on which fragments progressed before the error
/// won — only successful attempts are counter-reproducible.)
class PartitionedHashDivisionOperator : public Operator {
 public:
  PartitionedHashDivisionOperator(ExecContext* ctx,
                                  const ResolvedDivision& resolved,
                                  const DivisionOptions& options);
  ~PartitionedHashDivisionOperator() override;

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status NextBatch(TupleBatch* batch, bool* has_more) override;
  /// All phases run inside Open(); the output side just drains the buffered
  /// quotient, which is batch-native by construction.
  bool IsBatchNative() const override { return true; }
  Status Close() override;

  /// Number of phases actually executed (test hook).
  size_t phases_run() const { return phases_run_; }
  /// Recursive cluster splits taken by the quotient strategy (test hook).
  size_t repartitions() const { return repartitions_; }
  /// Full restarts with a doubled partition count (test hook).
  size_t restarts() const { return restarts_; }

  /// Partition passes executed over the spooled clusters, plus the overflow
  /// recovery counters (see the class comment).
  void ExportGauges(GaugeList* gauges) const override {
    gauges->emplace_back(metric_names::kGaugePhasesRun,
                         static_cast<double>(phases_run_));
    gauges->emplace_back(metric_names::kGaugeRepartitions,
                         static_cast<double>(repartitions_));
    gauges->emplace_back(metric_names::kGaugeEscalations,
                         static_cast<double>(escalations_));
    gauges->emplace_back(metric_names::kGaugeRestarts,
                         static_cast<double>(restarts_));
  }

 private:
  Status RunQuotientPartitioned();
  Status RunDivisorPartitioned(size_t num_partitions);
  Status RunCombined(size_t divisor_parts);

  /// Divides one dividend cluster against `core`'s (possibly borrowed)
  /// divisor table, recursively splitting the cluster when its quotient
  /// table overflows the memory budget. `depth` salts the split hash so a
  /// re-split does not reproduce the parent partitioning. All work is
  /// charged to `ctx` and all output goes to the explicit sinks, so the
  /// same code serves the serial path and one parallel fragment: quotient
  /// tuples append to `out`, phase/split tallies to `phases`/`repartitions`
  /// (folded into the operator gauges by the caller). `label` prefixes the
  /// temporary spill files of recursive splits — it must be unique per
  /// concurrent caller. With `allow_repartition` false the first overflow
  /// surfaces as ResourceExhausted instead of splitting: parallel fragments
  /// run in that mode, because an overflow under concurrent siblings may be
  /// an artifact of the schedule, and recovery decisions must not depend on
  /// the worker count — the caller defers the cluster and reruns it alone.
  Status DivideQuotientCluster(ExecContext* ctx, HashDivisionCore* core,
                               RecordFile* cluster, size_t depth,
                               const std::string& label,
                               std::vector<Tuple>* out, size_t* phases,
                               size_t* repartitions, bool allow_repartition);

  ExecContext* ctx_;
  ResolvedDivision resolved_;
  DivisionOptions options_;
  Schema schema_;

  std::vector<Tuple> results_;
  size_t emit_pos_ = 0;
  size_t phases_run_ = 0;
  size_t repartitions_ = 0;
  size_t escalations_ = 0;
  size_t restarts_ = 0;
};

}  // namespace reldiv

#endif  // RELDIV_DIVISION_PARTITIONED_HASH_DIVISION_H_
