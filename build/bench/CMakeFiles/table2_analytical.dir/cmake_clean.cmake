file(REMOVE_RECURSE
  "CMakeFiles/table2_analytical.dir/table2_analytical.cc.o"
  "CMakeFiles/table2_analytical.dir/table2_analytical.cc.o.d"
  "table2_analytical"
  "table2_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
