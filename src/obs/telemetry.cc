#include "obs/telemetry.h"

#include <cstdlib>
#include <cstring>

namespace reldiv {

std::atomic<int> Telemetry::mode_{static_cast<int>(TelemetryMode::kCounting)};

namespace {

/// RELDIV_TELEMETRY=off|count|sample (anything else keeps the default).
TelemetryMode ModeFromEnv() {
  const char* env = std::getenv("RELDIV_TELEMETRY");
  if (env == nullptr) return TelemetryMode::kCounting;
  if (std::strcmp(env, "off") == 0) return TelemetryMode::kOff;
  if (std::strcmp(env, "sample") == 0) return TelemetryMode::kSampling;
  return TelemetryMode::kCounting;
}

/// Instrument key as it appears in both exporters: `name` or
/// `name{key="value"}`.
std::string InstrumentKey(const std::string& name,
                          const std::string& label_key,
                          const std::string& label_value) {
  if (label_key.empty()) return name;
  return name + "{" + label_key + "=\"" + label_value + "\"}";
}

/// Splits an instrument key back into base name and the `key="value"`
/// fragment (empty when unlabelled).
void SplitKey(const std::string& key, std::string* base, std::string* label) {
  const size_t brace = key.find('{');
  if (brace == std::string::npos) {
    *base = key;
    label->clear();
    return;
  }
  *base = key.substr(0, brace);
  *label = key.substr(brace + 1, key.size() - brace - 2);
}

/// Emits one `# TYPE` header per base name, in map order.
void MaybeEmitType(const std::string& base, const char* type,
                   std::string* last_base, std::string* out) {
  if (base == *last_base) return;
  *last_base = base;
  *out += "# TYPE " + base + " " + type + "\n";
}

}  // namespace

TelemetryMode Telemetry::SetMode(TelemetryMode mode) {
  // Force the one-time RELDIV_TELEMETRY application (part of the registry's
  // first-touch initialization) to happen before the explicit store, so an
  // early SetMode cannot be clobbered by a later first registry touch.
  MetricRegistry::Global();
  return static_cast<TelemetryMode>(
      mode_.exchange(static_cast<int>(mode), std::memory_order_relaxed));
}

MetricRegistry& MetricRegistry::Global() {
  // Intentionally leaked so late-destroyed threads can still record
  // (mirrors FailpointRegistry::Global).
  static MetricRegistry* registry = [] {
    Telemetry::mode_.store(static_cast<int>(ModeFromEnv()),
                           std::memory_order_relaxed);
    return new MetricRegistry();  // NOLINT(reldiv/naked-new): intentional static leak, see comment above
  }();
  return *registry;
}

TelemetryCounter* MetricRegistry::FindOrCreateCounter(
    const std::string& name, const std::string& label_key,
    const std::string& label_value) {
  const std::string key = InstrumentKey(name, label_key, label_value);
  MutexLock lock(mu_);
  auto& slot = counters_[key];
  if (slot == nullptr) slot.reset(new TelemetryCounter());  // NOLINT(reldiv/naked-new): private ctor, make_unique has no access
  return slot.get();
}

TelemetryGauge* MetricRegistry::FindOrCreateGauge(
    const std::string& name, const std::string& label_key,
    const std::string& label_value) {
  const std::string key = InstrumentKey(name, label_key, label_value);
  MutexLock lock(mu_);
  auto& slot = gauges_[key];
  if (slot == nullptr) slot.reset(new TelemetryGauge());  // NOLINT(reldiv/naked-new): private ctor, make_unique has no access
  return slot.get();
}

Histogram* MetricRegistry::FindOrCreateHistogram(
    const std::string& name, const std::string& label_key,
    const std::string& label_value) {
  const std::string key = InstrumentKey(name, label_key, label_value);
  MutexLock lock(mu_);
  auto& slot = histograms_[key];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

size_t MetricRegistry::size() const {
  MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::string MetricRegistry::ToPrometheusText() const {
  MutexLock lock(mu_);
  std::string out;
  std::string base, label, last_base;
  for (const auto& [key, counter] : counters_) {
    SplitKey(key, &base, &label);
    MaybeEmitType(base, "counter", &last_base, &out);
    out += key + " " + std::to_string(counter->value()) + "\n";
  }
  last_base.clear();
  for (const auto& [key, gauge] : gauges_) {
    SplitKey(key, &base, &label);
    MaybeEmitType(base, "gauge", &last_base, &out);
    out += key + " " + std::to_string(gauge->value()) + "\n";
  }
  last_base.clear();
  for (const auto& [key, histogram] : histograms_) {
    SplitKey(key, &base, &label);
    MaybeEmitType(base, "histogram", &last_base, &out);
    const HistogramSnapshot snap = histogram->Snapshot();
    const std::string label_prefix = label.empty() ? "" : label + ",";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      out += base + "_bucket{" + label_prefix + "le=\"" +
             std::to_string(Histogram::BucketUpperBound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    const std::string label_suffix = label.empty() ? "" : "{" + label + "}";
    out += base + "_bucket{" + label_prefix + "le=\"+Inf\"} " +
           std::to_string(snap.count) + "\n";
    out += base + "_sum" + label_suffix + " " + std::to_string(snap.sum) +
           "\n";
    out += base + "_count" + label_suffix + " " +
           std::to_string(snap.count) + "\n";
  }
  return out;
}

std::string MetricRegistry::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"schema_version\":2,\"mode\":";
  switch (Telemetry::mode()) {
    case TelemetryMode::kOff:
      out += "\"off\"";
      break;
    case TelemetryMode::kCounting:
      out += "\"count\"";
      break;
    case TelemetryMode::kSampling:
      out += "\"sample\"";
      break;
  }
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + std::to_string(counter->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [key, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + std::to_string(gauge->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [key, histogram] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + key + "\":" + HistogramSnapshotToJson(histogram->Snapshot());
  }
  out += "}}";
  return out;
}

void MetricRegistry::ResetAllForTest() {
  MutexLock lock(mu_);
  for (auto& [key, counter] : counters_) counter->ResetForTest();
  for (auto& [key, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [key, histogram] : histograms_) histogram->Reset();
}

}  // namespace reldiv
