file(REMOVE_RECURSE
  "CMakeFiles/operator_contract_test.dir/operator_contract_test.cc.o"
  "CMakeFiles/operator_contract_test.dir/operator_contract_test.cc.o.d"
  "operator_contract_test"
  "operator_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/operator_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
