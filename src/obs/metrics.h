#ifndef RELDIV_OBS_METRICS_H_
#define RELDIV_OBS_METRICS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/counters.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/disk.h"

namespace reldiv {

/// Measured behavior of one operator in a profiled plan, recorded by the
/// ProfiledOperator wrapper (obs/profiled_operator.h). Wall times, CPU
/// counter deltas, and I/O deltas are INCLUSIVE of everything pulled through
/// the operator — i.e. the whole subtree below it. Exclusive ("self")
/// figures are derived by subtracting the children on the MetricsNode.
struct OperatorMetrics {
  uint64_t opens = 0;
  uint64_t closes = 0;
  uint64_t next_calls = 0;
  uint64_t next_batch_calls = 0;
  uint64_t tuples_out = 0;   ///< tuples emitted through either protocol
  uint64_t batches_out = 0;  ///< non-empty batches emitted via NextBatch

  uint64_t open_ns = 0;   ///< wall time inside Open()
  uint64_t next_ns = 0;   ///< wall time inside Next()/NextBatch()
  uint64_t close_ns = 0;  ///< wall time inside Close()

  CpuCounters cpu;  ///< Table 1 cost-unit deltas (Comp/Hash/Move/Bit)
  DiskStats io;     ///< simulated-disk deltas (transfers/seeks/KB)

  /// Algorithm-specific gauges exported by the wrapped operator via
  /// Operator::ExportGauges — hash-division bitmap fill ratio and
  /// early-output hits, sort run/merge counts, partition phase counts,
  /// peak hash/sort memory, and so on.
  std::vector<std::pair<std::string, double>> gauges;

  uint64_t total_ns() const { return open_ns + next_ns + close_ns; }
};

/// One node of the per-query metrics tree; shape mirrors the operator tree
/// of the profiled plan. Owned by a QueryProfile.
class MetricsNode {
 public:
  explicit MetricsNode(std::string label) : label_(std::move(label)) {}

  const std::string& label() const { return label_; }
  OperatorMetrics& metrics() { return metrics_; }
  const OperatorMetrics& metrics() const { return metrics_; }
  const std::vector<MetricsNode*>& children() const { return children_; }

  /// Exclusive wall time: inclusive minus the children's inclusive time.
  uint64_t self_ns() const;
  /// Exclusive CPU cost units.
  CpuCounters self_cpu() const;
  /// Exclusive I/O counts.
  DiskStats self_io() const;

 private:
  friend class QueryProfile;

  std::string label_;
  OperatorMetrics metrics_;
  std::vector<MetricsNode*> children_;
};

/// Per-query metrics collection attached to an ExecContext by
/// ExecContext::set_profiling(true). Plan builders wrap the operators they
/// construct in ProfiledOperator, each of which registers one MetricsNode
/// here.
///
/// Tree construction exploits that plans are built bottom-up: when a node is
/// created, every currently unadopted root is a subtree of the operator now
/// being wrapped, so CreateNode() adopts them all as children. SealRoots()
/// (called by plan builders once a plan root is wrapped) freezes the
/// finished tree so a later plan on the same context becomes a sibling root
/// instead of adopting it.
///
/// Structural mutation (CreateNode/Mark/SealRoots/Clear) is mutex-guarded so
/// parallel sections may register nodes concurrently. Reading the tree
/// (roots/ToString/ToJson) and mutating a node's OperatorMetrics are NOT
/// synchronized here: reads happen after execution quiesces, and each
/// MetricsNode has a single writer (its ProfiledOperator wrapper, or the
/// one exchange fragment that owns the lane node — see exec/exchange.h).
class QueryProfile {
 public:
  QueryProfile() = default;

  QueryProfile(const QueryProfile&) = delete;
  QueryProfile& operator=(const QueryProfile&) = delete;

  /// Registers a node for a newly wrapped operator, adopting as children the
  /// unsealed roots created at or after `mark` (they were built below it).
  /// The default mark 0 adopts every unsealed root — correct for linear
  /// chains and for an operator combining everything built so far. When a
  /// plan has sibling input subtrees, the builder takes Mark() before
  /// constructing each later sibling and passes it to the wrappers along
  /// that sibling's spine, so they do not adopt the finished earlier
  /// siblings. Returns a pointer that stays valid until Clear().
  MetricsNode* CreateNode(std::string label, size_t mark = 0);

  /// Position token for CreateNode's `mark` (the current root count).
  size_t Mark() const {
    MutexLock lock(mu_);
    return roots_.size();
  }

  /// Marks every current root as a finished tree: future CreateNode() calls
  /// will not adopt them.
  void SealRoots();

  /// All tree roots, in creation order. Typically one per profiled query.
  /// Outside the analysis: hands out a reference to guarded structure, which
  /// is only legal under the class's quiesced-read contract (callers read
  /// the tree after execution ends; see the class comment).
  const std::vector<MetricsNode*>& roots() const NO_THREAD_SAFETY_ANALYSIS {
    return roots_;
  }

  /// Drops every node (invalidates all MetricsNode pointers).
  void Clear();

  /// Human-readable tree: per operator the call counts, emitted tuples and
  /// batches, inclusive/self wall time, self cost units, self I/O, and
  /// gauges.
  std::string ToString() const;

  /// Machine-readable mirror of ToString() (nested JSON objects).
  std::string ToJson() const;

 private:
  /// Guards nodes_/roots_/sealed_roots_ (structural state; class comment).
  mutable Mutex mu_;
  std::vector<std::unique_ptr<MetricsNode>> nodes_ GUARDED_BY(mu_);
  std::vector<MetricsNode*> roots_ GUARDED_BY(mu_);
  /// roots_[0 .. sealed_roots_) are frozen.
  size_t sealed_roots_ GUARDED_BY(mu_) = 0;
};

}  // namespace reldiv

#endif  // RELDIV_OBS_METRICS_H_
