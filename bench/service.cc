// Experiment E9 (DESIGN.md §16): the multi-query service layer under
// concurrent load. For 1/4/16/64 concurrent clients, three serving modes
// over the same division query:
//
//   cold         every query bypasses the quotient cache and executes a
//                full hash-division plan (the uncached baseline);
//   cached       the cache is warmed once, then every query is a pure hit;
//   incremental  a catalog mutation lands between waves, so every hit is
//                served from an incrementally MAINTAINED entry (bit-set /
//                counted-delete maintenance, never a rebuild).
//
// Each row reports throughput and the p50/p95/p99 per-query execution
// latency. Two gates fail the binary (exit 1), so tools/check_all.sh's
// bench smoke stage enforces them on every run:
//
//   1. cached-hit p50 latency must sit at least 10x below cold p50 at
//      every client count;
//   2. the 64-client cached p99 must stay bounded — below the cold p50 at
//      the same client count (the tail of a hit is still cheaper than a
//      typical uncached execution).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "service/service.h"

namespace reldiv {
namespace {

/// Quotient groups and divisor cardinality for the benchmark relation:
/// every group carries all divisor values, so the quotient is all groups
/// and the cold plan does full work per query.
constexpr int64_t kGroups = 500;
constexpr int64_t kDivisors = 40;
constexpr int64_t kSmokeGroups = 60;
constexpr int64_t kSmokeDivisors = 10;

/// Gate 1: cached-hit p50 must be at least this factor below cold p50.
constexpr double kHitSpeedupGate = 10.0;

struct ModeStats {
  double throughput_qps = 0;
  double p50_us = 0;
  double p95_us = 0;
  double p99_us = 0;
  uint64_t queries = 0;
};

Result<std::unique_ptr<Database>> MakeDatabase(int64_t groups,
                                               int64_t divisors) {
  DatabaseOptions options;
  options.pool_bytes = 64 * 1024 * 1024;
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(options));
  RELDIV_RETURN_NOT_OK(db->CreateTable(
                             "r", Schema{Field{"q", ValueType::kInt64},
                                         Field{"d", ValueType::kInt64}})
                           .status());
  RELDIV_RETURN_NOT_OK(
      db->CreateTable("s", Schema{Field{"d", ValueType::kInt64}}).status());
  for (int64_t d = 0; d < divisors; ++d) {
    RELDIV_RETURN_NOT_OK(db->Insert("s", Tuple{Value::Int64(d)}));
  }
  for (int64_t q = 0; q < groups; ++q) {
    for (int64_t d = 0; d < divisors; ++d) {
      RELDIV_RETURN_NOT_OK(
          db->Insert("r", Tuple{Value::Int64(q), Value::Int64(d)}));
    }
  }
  return db;
}

Result<DivisionQuery> BenchQuery(Database* db) {
  RELDIV_ASSIGN_OR_RETURN(Relation dividend, db->GetTable("r"));
  RELDIV_ASSIGN_OR_RETURN(Relation divisor, db->GetTable("s"));
  return DivisionQuery{dividend, divisor, {"d"}};
}

enum class Mode { kCold, kCached, kIncremental };

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kCold:
      return "cold";
    case Mode::kCached:
      return "cached";
    case Mode::kIncremental:
      return "incremental";
  }
  return "unknown";
}

/// Runs `rounds` waves of one query per client through a fresh service and
/// folds every ticket's execution latency into the stats. In incremental
/// mode a dividend insert lands before each wave so the observer maintains
/// the cached entry between hits.
Result<ModeStats> RunMode(Database* db, const DivisionQuery& query,
                          size_t clients, size_t rounds, Mode mode,
                          int64_t groups) {
  ServiceOptions options;
  options.max_concurrent = std::min<size_t>(clients, 8);
  options.grant_bytes = 1 << 20;
  DivisionService service(db, options);

  std::vector<std::string> tenants;
  for (size_t c = 0; c < clients; ++c) {
    tenants.push_back("client-" + std::to_string(c));
    TenantOptions tenant;
    tenant.max_queue_depth = rounds + 1;
    service.RegisterTenant(tenants.back(), tenant);
  }

  QueryRequest request;
  request.query = query;
  request.bypass_cache = mode == Mode::kCold;

  if (mode != Mode::kCold) {
    // Warm the cache: the build itself is not part of the measured rows.
    RELDIV_ASSIGN_OR_RETURN(std::shared_ptr<QueryTicket> warm,
                            service.Submit(tenants[0], request));
    RELDIV_RETURN_NOT_OK(service.RunUntilIdle());
    RELDIV_RETURN_NOT_OK(warm->status());
    if (warm->quotient().size() != static_cast<size_t>(groups)) {
      return Status::Internal("warm-up produced a wrong quotient size");
    }
  }
  const uint64_t maintained_before = service.cache()->incremental_updates();

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  tickets.reserve(clients * rounds);
  const auto t0 = std::chrono::steady_clock::now();
  int64_t next_group = groups;
  for (size_t round = 0; round < rounds; ++round) {
    if (mode == Mode::kIncremental) {
      // A fresh group with one divisor value: bit-set maintenance on the
      // cached entry, no quotient membership change.
      RELDIV_RETURN_NOT_OK(db->Insert(
          "r", Tuple{Value::Int64(next_group++), Value::Int64(0)}));
    }
    for (const std::string& tenant : tenants) {
      RELDIV_ASSIGN_OR_RETURN(std::shared_ptr<QueryTicket> ticket,
                              service.Submit(tenant, request));
      tickets.push_back(std::move(ticket));
    }
    if (mode == Mode::kIncremental) {
      // Drain per wave so the next mutation interleaves with served hits.
      RELDIV_RETURN_NOT_OK(service.RunUntilIdle());
    }
  }
  RELDIV_RETURN_NOT_OK(service.RunUntilIdle());
  const auto t1 = std::chrono::steady_clock::now();

  std::vector<double> latencies_ns;
  for (const std::shared_ptr<QueryTicket>& ticket : tickets) {
    RELDIV_RETURN_NOT_OK(ticket->status());
    if (ticket->quotient().size() != static_cast<size_t>(groups)) {
      return Status::Internal("a measured query returned a wrong quotient");
    }
    if (mode != Mode::kCold && !ticket->cache_hit()) {
      return Status::Internal("a measured query missed the warmed cache");
    }
    latencies_ns.push_back(static_cast<double>(ticket->exec_us()) * 1e3);
  }
  if (mode == Mode::kIncremental) {
    if (service.cache()->incremental_updates() <= maintained_before) {
      return Status::Internal("no incremental maintenance was exercised");
    }
    if (service.cache()->invalidations() != 0) {
      return Status::Internal(
          "a notified mutation fell back to invalidation");
    }
  }

  ModeStats stats;
  stats.queries = tickets.size();
  const double wall_s = std::chrono::duration<double>(t1 - t0).count();
  stats.throughput_qps =
      wall_s > 0 ? static_cast<double>(tickets.size()) / wall_s : 0;
  stats.p50_us = bench::PercentileNs(latencies_ns, 50) / 1e3;
  stats.p95_us = bench::PercentileNs(latencies_ns, 95) / 1e3;
  stats.p99_us = bench::PercentileNs(latencies_ns, 99) / 1e3;
  return stats;
}

Status Run() {
  const bool smoke = bench::SmokeMode();
  const int64_t groups = smoke ? kSmokeGroups : kGroups;
  const int64_t divisors = smoke ? kSmokeDivisors : kDivisors;
  const std::vector<size_t> client_counts = {1, 4, 16, 64};

  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          MakeDatabase(groups, divisors));
  RELDIV_ASSIGN_OR_RETURN(DivisionQuery query, BenchQuery(db.get()));

  bench::BenchReporter report("service");
  report.AddParam("smoke", smoke ? 1 : 0);
  report.AddParam("groups", static_cast<double>(groups));
  report.AddParam("divisors", static_cast<double>(divisors));

  std::printf(
      "=== Experiment E9: service layer, quotient cache under load ===\n\n");
  std::printf("  %-20s %10s %10s %10s %10s\n", "mode/clients", "qps",
              "p50 us", "p95 us", "p99 us");

  double cold_p50_at_64 = 0;
  double cached_p99_at_64 = 0;
  Status gate = Status::OK();
  for (size_t clients : client_counts) {
    // Rounds chosen so every client count yields enough samples for a p99
    // while the 64-client cold sweep stays in CI budget.
    const size_t rounds =
        smoke ? 4 : std::max<size_t>(8, 128 / clients);
    double cold_p50 = 0;
    for (Mode mode : {Mode::kCold, Mode::kCached, Mode::kIncremental}) {
      RELDIV_ASSIGN_OR_RETURN(
          ModeStats stats,
          RunMode(db.get(), query, clients, rounds, mode, groups));
      // Incremental rounds append rows; rebuild `groups` for later modes.
      if (mode == Mode::kIncremental) {
        RELDIV_ASSIGN_OR_RETURN(uint64_t removed,
                                db->DeleteWhere("r", [groups](const Tuple& t) {
                                  return t.value(0).int64() >= groups;
                                }));
        (void)removed;
      }
      const std::string label =
          std::string(ModeName(mode)) + "/" + std::to_string(clients);
      bench::BenchRow* row = report.AddRow(label);
      for (double ns : std::vector<double>{stats.p50_us * 1e3}) {
        row->wall_ns.push_back(ns);
      }
      row->AddValue("clients", static_cast<double>(clients));
      row->AddValue("queries", static_cast<double>(stats.queries));
      row->AddValue("throughput_qps", stats.throughput_qps);
      row->AddValue("p50_us", stats.p50_us);
      row->AddValue("p95_us", stats.p95_us);
      row->AddValue("p99_us", stats.p99_us);
      std::printf("  %-20s %10.0f %10.1f %10.1f %10.1f\n", label.c_str(),
                  stats.throughput_qps, stats.p50_us, stats.p95_us,
                  stats.p99_us);

      if (mode == Mode::kCold) cold_p50 = stats.p50_us;
      if (clients == 64 && mode == Mode::kCold) cold_p50_at_64 = stats.p50_us;
      if (clients == 64 && mode == Mode::kCached) {
        cached_p99_at_64 = stats.p99_us;
      }
      if (mode == Mode::kCached && gate.ok() &&
          stats.p50_us * kHitSpeedupGate > cold_p50) {
        gate = Status::Internal(
            "cached p50 " + std::to_string(stats.p50_us) + "us at " +
            std::to_string(clients) + " clients is not " +
            std::to_string(kHitSpeedupGate) + "x below cold p50 " +
            std::to_string(cold_p50) + "us");
      }
    }
  }
  std::printf("\n");

  if (gate.ok() && cached_p99_at_64 >= cold_p50_at_64) {
    gate = Status::Internal(
        "64-client cached p99 " + std::to_string(cached_p99_at_64) +
        "us is not bounded below the cold p50 " +
        std::to_string(cold_p50_at_64) + "us");
  }
  RELDIV_RETURN_NOT_OK(gate);
  std::printf("  gates: cached p50 >= %.0fx below cold at every client "
              "count; 64-client cached p99 %.1f us < cold p50 %.1f us "
              "[ok]\n\n",
              kHitSpeedupGate, cached_p99_at_64, cold_p50_at_64);
  return report.WriteFile() ? Status::OK()
                            : Status::Internal("failed to write report");
}

}  // namespace
}  // namespace reldiv

int main() {
  reldiv::Status status = reldiv::Run();
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
