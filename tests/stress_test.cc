// Large randomized end-to-end runs exercising the full stack under a
// constrained memory budget: external sorts spill, the buffer pool evicts,
// hash tables share the pool with frames, and every algorithm still has to
// agree with brute force.

#include <cstdlib>
#include <memory>
#include <string>

#include "common/rng.h"
#include "division/division.h"
#include "exec/database.h"
#include "gtest/gtest.h"
#include "testing/failpoint.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace reldiv {
namespace {

struct StressCase {
  uint64_t divisor;
  uint64_t candidates;
  double completeness;
  uint64_t foreign;
  uint64_t dups;
  size_t pool_kb;  ///< 0 = unbounded
  uint64_t seed;
};

class StressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressTest, AllAlgorithmsAgreeUnderMemoryPressure) {
  const StressCase& c = GetParam();
  WorkloadSpec spec;
  spec.divisor_cardinality = c.divisor;
  spec.quotient_candidates = c.candidates;
  spec.candidate_completeness = c.completeness;
  spec.nonmatching_tuples = c.foreign;
  spec.dividend_duplicates = c.dups;
  spec.divisor_duplicates = c.dups / 10;
  spec.seed = c.seed;
  GeneratedWorkload workload = GenerateWorkload(spec);

  DatabaseOptions options;
  options.pool_bytes = c.pool_kb * 1024;
  options.sort_space_bytes = 24 * 1024;  // force external sorts
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(options));
  Relation dividend, divisor;
  ASSERT_OK(LoadWorkload(db.get(), workload, "stress", &dividend, &divisor));
  DivisionQuery query{dividend, divisor, {"divisor_id"}};

  for (DivisionAlgorithm algorithm :
       {DivisionAlgorithm::kNaive, DivisionAlgorithm::kSortAggregateWithJoin,
        DivisionAlgorithm::kHashAggregateWithJoin,
        DivisionAlgorithm::kHashDivisionPartitioned}) {
    DivisionOptions div_options;
    div_options.eliminate_duplicates =
        algorithm == DivisionAlgorithm::kSortAggregateWithJoin ||
        algorithm == DivisionAlgorithm::kHashAggregateWithJoin;
    div_options.num_partitions = 16;
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> quotient,
                         Divide(db->ctx(), query, algorithm, div_options));
    EXPECT_EQ(Sorted(std::move(quotient)), workload.expected_quotient)
        << DivisionAlgorithmName(algorithm);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressTest,
    ::testing::Values(
        StressCase{60, 1500, 0.5, 20000, 5000, 0, 201},
        StressCase{200, 500, 0.3, 50000, 0, 0, 202},
        StressCase{30, 3000, 0.7, 0, 10000, 512, 203},
        StressCase{500, 100, 0.5, 30000, 2000, 512, 204}),
    [](const ::testing::TestParamInfo<StressCase>& param_info) {
      const StressCase& c = param_info.param;
      return "S" + std::to_string(c.divisor) + "_C" +
             std::to_string(c.candidates) + "_f" + std::to_string(c.foreign) +
             "_d" + std::to_string(c.dups) + "_m" +
             std::to_string(c.pool_kb);
    });

TEST(StressSingle, FileBackedDiskEndToEnd) {
  // Same pipeline on a Unix-file-backed simulated disk (§5.1 supports both
  // backings).
  DatabaseOptions options;
  options.pool_bytes = 256 * 1024;
  options.file_backed_disk = true;
  options.disk_path = "/tmp/reldiv-stress-disk.bin";
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(options));
  GeneratedWorkload workload = GenerateWorkload(PaperCell(50, 200));
  Relation dividend, divisor;
  ASSERT_OK(LoadWorkload(db.get(), workload, "file", &dividend, &divisor));
  DivisionQuery query{dividend, divisor, {"divisor_id"}};
  for (DivisionAlgorithm algorithm :
       {DivisionAlgorithm::kNaive, DivisionAlgorithm::kHashDivision}) {
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> quotient,
                         Divide(db->ctx(), query, algorithm));
    EXPECT_EQ(Sorted(std::move(quotient)), workload.expected_quotient)
        << DivisionAlgorithmName(algorithm);
  }
}

TEST(StressSingle, RepeatedQueriesReuseTheSameDatabase) {
  // Plans must not leak pins or pool memory: run many divisions back to
  // back on one instance with a finite budget and verify the pool drains.
  DatabaseOptions options;
  options.pool_bytes = 512 * 1024;
  ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db, Database::Open(options));
  GeneratedWorkload workload = GenerateWorkload(PaperCell(40, 100));
  Relation dividend, divisor;
  ASSERT_OK(LoadWorkload(db.get(), workload, "loop", &dividend, &divisor));
  DivisionQuery query{dividend, divisor, {"divisor_id"}};
  for (int round = 0; round < 20; ++round) {
    const DivisionAlgorithm algorithm =
        round % 2 == 0 ? DivisionAlgorithm::kHashDivision
                       : DivisionAlgorithm::kHashAggregateWithJoin;
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> quotient,
                         Divide(db->ctx(), query, algorithm));
    ASSERT_EQ(quotient.size(), workload.expected_quotient.size())
        << "round " << round;
  }
  // After draining the buffer pool, only frame memory may remain reserved.
  ASSERT_OK(db->buffer_manager()->FlushAll());
  ASSERT_OK(db->buffer_manager()->DropAll());
  EXPECT_EQ(db->pool()->used(), 0u);
}

// Randomized failpoint-schedule fuzzer: each iteration draws a schedule
// (which sites, which trigger policies, which error codes) and one of the
// seven algorithms from a seeded Rng, then demands the differential
// contract — either the exact reference quotient (the faults were absorbed
// by eviction, fallback, or restart) or a clean non-OK Status at the root.
// The faults stage of tools/check_all.sh reruns this under ASan/TSan, which
// upgrades "clean" to "no leak, no use-after-free, no race". Iteration
// count can be raised via RELDIV_STRESS_ITERS; the seed of a failing
// schedule is in the trace, and pinning it back reproduces the run exactly.
TEST(FailpointFuzz, RandomSchedulesEndInExactQuotientOrCleanError) {
  uint64_t iters = 12;
  if (const char* env = std::getenv("RELDIV_STRESS_ITERS")) {
    const uint64_t parsed = std::strtoull(env, nullptr, 10);
    if (parsed > 0) iters = parsed;
  }

  WorkloadSpec spec;
  spec.divisor_cardinality = 10;
  spec.quotient_candidates = 60;
  spec.candidate_completeness = 0.5;
  spec.nonmatching_tuples = 0;  // keep the no-join aggregations valid
  spec.dividend_duplicates = 15;
  spec.seed = 31;
  const GeneratedWorkload workload = GenerateWorkload(spec);

  constexpr DivisionAlgorithm kAlgorithms[] = {
      DivisionAlgorithm::kNaive,
      DivisionAlgorithm::kSortAggregate,
      DivisionAlgorithm::kSortAggregateWithJoin,
      DivisionAlgorithm::kHashAggregate,
      DivisionAlgorithm::kHashAggregateWithJoin,
      DivisionAlgorithm::kHashDivision,
      DivisionAlgorithm::kHashDivisionPartitioned,
  };

  for (uint64_t iter = 0; iter < iters; ++iter) {
    const uint64_t seed = 0xfa170000u + iter;
    SCOPED_TRACE("failpoint fuzz seed " + std::to_string(seed));
    Rng rng(seed);

    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Database> db,
                         Database::Open(DatabaseOptions{}));
    Relation dividend, divisor;
    ASSERT_OK(LoadWorkload(db.get(), workload, "fuzz", &dividend, &divisor));
    // Evict the loaded pages so read faults are reachable too.
    ASSERT_OK(db->buffer_manager()->FlushAll());
    ASSERT_OK(db->buffer_manager()->DropAll());

    const size_t num_sites =
        sizeof(kFailpointSites) / sizeof(kFailpointSites[0]);
    const size_t armed = 1 + rng.Uniform(3);
    for (size_t i = 0; i < armed; ++i) {
      const char* site = kFailpointSites[rng.Uniform(num_sites)];
      constexpr StatusCode kCodes[] = {StatusCode::kIOError,
                                       StatusCode::kResourceExhausted,
                                       StatusCode::kCorruption};
      const StatusCode code = kCodes[rng.Uniform(3)];
      FailpointPolicy policy;
      switch (rng.Uniform(3)) {
        case 0:
          policy = FailpointPolicy::Always(code, "fuzz");
          break;
        case 1:
          policy = FailpointPolicy::OnNthHit(1 + rng.Uniform(20), code,
                                             "fuzz");
          break;
        default:
          policy = FailpointPolicy::WithProbability(
              1 + static_cast<uint32_t>(rng.Uniform(30)), rng.Next(), code,
              "fuzz");
          break;
      }
      FailpointRegistry::Global().Arm(site, policy);
    }

    const DivisionAlgorithm algorithm = kAlgorithms[rng.Uniform(7)];
    DivisionOptions div_options;
    div_options.eliminate_duplicates =
        algorithm == DivisionAlgorithm::kSortAggregate ||
        algorithm == DivisionAlgorithm::kHashAggregate ||
        algorithm == DivisionAlgorithm::kSortAggregateWithJoin ||
        algorithm == DivisionAlgorithm::kHashAggregateWithJoin;
    div_options.num_partitions = 4;
    div_options.overflow_fallback = rng.Chance(50);
    Result<std::vector<Tuple>> result =
        Divide(db->ctx(), DivisionQuery{dividend, divisor, {"divisor_id"}},
               algorithm, div_options);
    FailpointRegistry::Global().DisarmAll();

    if (result.ok()) {
      EXPECT_EQ(Sorted(result.MoveValue()), workload.expected_quotient)
          << DivisionAlgorithmName(algorithm)
          << ": a run that absorbs its faults must still be exact";
    } else {
      EXPECT_FALSE(result.status().message().empty())
          << DivisionAlgorithmName(algorithm);
    }
  }
}

}  // namespace
}  // namespace reldiv
