#include "parallel/node.h"

namespace reldiv {

WorkerNode::WorkerNode(size_t node_id, size_t pool_bytes)
    : node_id_(node_id) {
  disk_ = std::make_unique<SimDisk>();
  pool_ = pool_bytes == 0 ? nullptr
                          : std::make_unique<MemoryPool>(pool_bytes);
  buffer_manager_ = std::make_unique<BufferManager>(disk_.get(), pool_.get());
  if (pool_ != nullptr) {
    BufferManager* bm = buffer_manager_.get();
    pool_->SetReclaimer([bm] { return bm->TryShedFrame(); });
  }
  ctx_ = std::make_unique<ExecContext>(disk_.get(), buffer_manager_.get(),
                                       pool_.get(), &counters_);
}

}  // namespace reldiv
