file(REMOVE_RECURSE
  "CMakeFiles/parallel_scaleup.dir/parallel_scaleup.cc.o"
  "CMakeFiles/parallel_scaleup.dir/parallel_scaleup.cc.o.d"
  "parallel_scaleup"
  "parallel_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
