file(REMOVE_RECURSE
  "CMakeFiles/supplier_parts.dir/supplier_parts.cpp.o"
  "CMakeFiles/supplier_parts.dir/supplier_parts.cpp.o.d"
  "supplier_parts"
  "supplier_parts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supplier_parts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
