#include "storage/buffer_manager.h"

#include "common/metric_names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "testing/failpoint.h"

namespace reldiv {

std::string BufferStats::ToString() const {
  return "fixes=" + std::to_string(fixes) + " hits=" + std::to_string(hits) +
         " misses=" + std::to_string(misses) +
         " evictions=" + std::to_string(evictions) +
         " writebacks=" + std::to_string(writebacks);
}

BufferManager::BufferManager(SimDisk* disk, MemoryPool* pool)
    : disk_(disk), pool_(pool) {}

BufferManager::~BufferManager() {
  // Dirty frames are intentionally not flushed here: the owner decides when
  // FlushAll() runs; destruction releases memory only.
  if (pool_ != nullptr) pool_->Release(frames_.size() * kPageSize);
}

Status BufferManager::WriteBack(Frame* frame) {
  if (!frame->dirty) return Status::OK();
  RELDIV_RETURN_NOT_OK(disk_->Write(frame->page_no * kSectorsPerPage,
                                    kSectorsPerPage, frame->data.get()));
  frame->dirty = false;
  stats_.writebacks++;
  if (trace_ != nullptr) {
    trace_->Instant("page-write", "buffer", /*tid=*/0,
                    {{"page", frame->page_no}});
  }
  return Status::OK();
}

Status BufferManager::ReadIn(Frame* frame) {
  if (trace_ != nullptr) {
    trace_->Instant("page-read", "buffer", /*tid=*/0,
                    {{"page", frame->page_no}});
  }
  return disk_->Read(frame->page_no * kSectorsPerPage, kSectorsPerPage,
                     frame->data.get());
}

Result<bool> BufferManager::EvictOne() {
  if (lru_.empty()) return false;
  const uint64_t victim = lru_.front();
  RELDIV_RETURN_NOT_OK(ReleaseFrame(victim));
  stats_.evictions++;
  if (Telemetry::counting()) {
    static TelemetryCounter* evictions_total =
        MetricRegistry::Global().FindOrCreateCounter(
            metric_names::kBufferEvictionsTotal);
    evictions_total->Add(1);
  }
  if (trace_ != nullptr) {
    trace_->Instant("page-evict", "buffer", /*tid=*/0, {{"page", victim}});
  }
  return true;
}

Status BufferManager::ReleaseFrame(uint64_t page_no) {
  auto it = frames_.find(page_no);
  if (it == frames_.end()) return Status::OK();
  Frame& frame = it->second;
  RELDIV_RETURN_NOT_OK(WriteBack(&frame));
  if (frame.in_lru) lru_.erase(frame.lru_pos);
  frames_.erase(it);
  if (pool_ != nullptr) pool_->Release(kPageSize);
  return Status::OK();
}

Result<char*> BufferManager::FixAttempt(uint64_t page_no, bool create,
                                        bool first_attempt,
                                        bool* would_block) {
  // One lock spans lookup, statistics, pool growth, and read-in: two lanes
  // fixing the same non-resident page serialize into exactly one miss+read
  // followed by hits, never a double read-in or a torn counter. The pool's
  // reclaimer re-enters through TryShedFrame on this thread (recursive).
  RecursiveMutexLock lock(mu_);
  if (first_attempt) {
    RELDIV_FAILPOINT("buffer/fix");
    stats_.fixes++;
  }
  auto it = frames_.find(page_no);
  if (it != frames_.end()) {
    // Hit/miss is classified once, on the first attempt: a page that shows
    // up while this fix waited for memory was still a miss when requested
    // (fixes == hits + misses stays exact).
    if (first_attempt) {
      stats_.hits++;
      if (Telemetry::counting()) {
        static TelemetryCounter* hits_total =
            MetricRegistry::Global().FindOrCreateCounter(
                metric_names::kBufferHitsTotal);
        hits_total->Add(1);
      }
    }
    Frame& frame = it->second;
    if (frame.in_lru) {
      lru_.erase(frame.lru_pos);
      frame.in_lru = false;
    }
    frame.pin_count++;
    return frame.data.get();
  }
  if (first_attempt) {
    stats_.misses++;
    if (Telemetry::counting()) {
      static TelemetryCounter* misses_total =
          MetricRegistry::Global().FindOrCreateCounter(
              metric_names::kBufferMissesTotal);
      misses_total->Add(1);
    }
  }

  // Grow the pool if possible; otherwise evict an unfixed frame.
  while (pool_ != nullptr && !pool_->Reserve(kPageSize)) {
    RELDIV_ASSIGN_OR_RETURN(bool evicted, EvictOne());
    if (!evicted) {
      *would_block = true;
      return Status::ResourceExhausted(
          "buffer pool: all frames fixed and memory pool exhausted");
    }
  }

  Frame frame;
  frame.data = std::make_unique<char[]>(kPageSize);
  frame.page_no = page_no;
  frame.pin_count = 1;
  if (!create) {
    Status st = ReadIn(&frame);
    if (!st.ok()) {
      if (pool_ != nullptr) pool_->Release(kPageSize);
      return st;
    }
  }
  char* data = frame.data.get();
  frames_.emplace(page_no, std::move(frame));
  return data;
}

Result<char*> BufferManager::Fix(uint64_t page_no, bool create) {
  const std::chrono::milliseconds timeout =
      pool_ == nullptr ? std::chrono::milliseconds(0) : pool_->wait_timeout();
  bool deadline_set = false;
  std::chrono::steady_clock::time_point deadline;
  bool first_attempt = true;
  while (true) {
    bool would_block = false;
    Result<char*> result =
        FixAttempt(page_no, create, first_attempt, &would_block);
    first_attempt = false;
    if (!would_block) return result;
    // Every frame is pinned and the pool denied the page. The old code
    // returned here unconditionally, which under multi-query contention
    // turns a transient peak into a hard failure (and retry loops above it
    // into busy spins). With a wait budget, park on the pool's release
    // condvar with mu_ DROPPED — the Release that frees budget comes from
    // another query's Unfix/Reset, which needs this manager's mutex — then
    // re-run the whole attempt (re-lookup included; the page may have
    // arrived meanwhile). A denial while the pool has room is a forced
    // failpoint denial: surface it immediately, as before.
    if (timeout.count() <= 0 || pool_->HasSpaceFor(kPageSize)) return result;
    if (!deadline_set) {
      deadline = std::chrono::steady_clock::now() + timeout;
      deadline_set = true;
    }
    if (!pool_->WaitForSpace(kPageSize, deadline)) {
      return Status::ResourceExhausted(
          "buffer pool: all frames fixed and memory pool still exhausted "
          "after " +
          std::to_string(timeout.count()) + " ms grant deadline");
    }
  }
}

Status BufferManager::Unfix(uint64_t page_no, bool dirty,
                            bool replace_immediately) {
  RecursiveMutexLock lock(mu_);
  auto it = frames_.find(page_no);
  if (it == frames_.end()) {
    return Status::InvalidArgument("unfix of non-resident page " +
                                   std::to_string(page_no));
  }
  Frame& frame = it->second;
  if (frame.pin_count <= 0) {
    return Status::Internal("unfix of unpinned page " +
                            std::to_string(page_no));
  }
  frame.dirty = frame.dirty || dirty;
  frame.pin_count--;
  if (frame.pin_count == 0) {
    if (replace_immediately) {
      // §5.1: the unfix call says the page can be replaced immediately; the
      // pool shrinks right away.
      return ReleaseFrame(page_no);
    }
    frame.lru_pos = lru_.insert(lru_.end(), page_no);
    frame.in_lru = true;
  }
  return Status::OK();
}

Status BufferManager::FlushAll() {
  RecursiveMutexLock lock(mu_);
  for (auto& [page_no, frame] : frames_) {
    RELDIV_RETURN_NOT_OK(WriteBack(&frame));
  }
  return Status::OK();
}

Status BufferManager::DropAll() {
  RecursiveMutexLock lock(mu_);
  for (const auto& [page_no, frame] : frames_) {
    if (frame.pin_count > 0) {
      return Status::Internal("DropAll with page " + std::to_string(page_no) +
                              " still fixed");
    }
  }
  while (!lru_.empty()) {
    RELDIV_RETURN_NOT_OK(ReleaseFrame(lru_.front()));
  }
  return Status::OK();
}

bool BufferManager::TryShedFrame() {
  RecursiveMutexLock lock(mu_);
  auto evicted = EvictOne();
  return evicted.ok() && *evicted;
}

int BufferManager::PinCount(uint64_t page_no) const {
  RecursiveMutexLock lock(mu_);
  auto it = frames_.find(page_no);
  return it == frames_.end() ? 0 : it->second.pin_count;
}

}  // namespace reldiv
