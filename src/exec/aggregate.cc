#include "exec/aggregate.h"

namespace reldiv {

AggState::AggState(const std::vector<AggSpec>& specs)
    : values_(specs.size()), distinct_(specs.size()) {}

void AggState::Update(const std::vector<AggSpec>& specs, const Tuple& tuple) {
  for (size_t i = 0; i < specs.size(); ++i) {
    const AggSpec& spec = specs[i];
    switch (spec.fn) {
      case AggFn::kCount:
        values_[i] = Value::Int64(values_[i].int64() + 1);
        break;
      case AggFn::kCountDistinct:
        distinct_[i].insert(tuple.Project(spec.distinct_columns()));
        break;
      case AggFn::kAvg: {
        // Running sum; divided by the row count at Finish time.
        const Value& v = tuple.value(spec.arg);
        const double base =
            rows_ == 0 ? 0.0
                       : (values_[i].type() == ValueType::kDouble
                              ? values_[i].double_value()
                              : 0.0);
        const double x = v.type() == ValueType::kDouble
                             ? v.double_value()
                             : static_cast<double>(v.int64());
        values_[i] = Value::Double(base + x);
        break;
      }
      case AggFn::kSum: {
        const Value& v = tuple.value(spec.arg);
        if (v.type() == ValueType::kDouble) {
          const double base =
              rows_ == 0 ? 0.0
                         : (values_[i].type() == ValueType::kDouble
                                ? values_[i].double_value()
                                : 0.0);
          values_[i] = Value::Double(base + v.double_value());
        } else {
          const int64_t base = rows_ == 0 ? 0 : values_[i].int64();
          values_[i] = Value::Int64(base + v.int64());
        }
        break;
      }
      case AggFn::kMin: {
        const Value& v = tuple.value(spec.arg);
        if (rows_ == 0 || v.Compare(values_[i]) < 0) values_[i] = v;
        break;
      }
      case AggFn::kMax: {
        const Value& v = tuple.value(spec.arg);
        if (rows_ == 0 || v.Compare(values_[i]) > 0) values_[i] = v;
        break;
      }
    }
  }
  rows_++;
}

Status AggState::Finish(const std::vector<AggSpec>& specs, Tuple* out) const {
  for (size_t i = 0; i < specs.size(); ++i) {
    switch (specs[i].fn) {
      case AggFn::kMin:
      case AggFn::kMax:
        if (rows_ == 0) {
          return Status::InvalidArgument("MIN/MAX over zero rows");
        }
        out->Append(values_[i]);
        break;
      case AggFn::kAvg:
        if (rows_ == 0) {
          return Status::InvalidArgument("AVG over zero rows");
        }
        out->Append(Value::Double(values_[i].double_value() /
                                  static_cast<double>(rows_)));
        break;
      case AggFn::kCountDistinct:
        out->Append(
            Value::Int64(static_cast<int64_t>(distinct_[i].size())));
        break;
      case AggFn::kCount:
      case AggFn::kSum:
        out->Append(values_[i]);
        break;
    }
  }
  return Status::OK();
}

Result<std::vector<Field>> AggOutputFields(const Schema& input,
                                           const std::vector<AggSpec>& specs) {
  std::vector<Field> fields;
  for (const AggSpec& spec : specs) {
    Field field;
    field.name = spec.name;
    switch (spec.fn) {
      case AggFn::kCount:
        field.type = ValueType::kInt64;
        break;
      case AggFn::kCountDistinct:
        for (size_t col : spec.distinct_columns()) {
          if (col >= input.num_fields()) {
            return Status::InvalidArgument("aggregate argument out of range");
          }
        }
        field.type = ValueType::kInt64;
        break;
      case AggFn::kAvg:
        if (spec.arg >= input.num_fields()) {
          return Status::InvalidArgument("aggregate argument out of range");
        }
        field.type = ValueType::kDouble;
        break;
      case AggFn::kSum:
      case AggFn::kMin:
      case AggFn::kMax:
        if (spec.arg >= input.num_fields()) {
          return Status::InvalidArgument("aggregate argument out of range");
        }
        field.type = input.field(spec.arg).type;
        break;
    }
    fields.push_back(std::move(field));
  }
  return fields;
}

}  // namespace reldiv
