file(REMOVE_RECURSE
  "CMakeFiles/early_output.dir/early_output.cc.o"
  "CMakeFiles/early_output.dir/early_output.cc.o.d"
  "early_output"
  "early_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/early_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
