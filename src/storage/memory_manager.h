#ifndef RELDIV_STORAGE_MEMORY_MANAGER_H_
#define RELDIV_STORAGE_MEMORY_MANAGER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace reldiv {

/// Shared main-memory budget. The buffer pool grows dynamically against this
/// pool and shrinks as buffer slots are unfixed (paper §5.1); hash tables,
/// bit maps and chain elements draw from the same pool through Arena. When
/// Reserve() fails the requester must spill or partition — this is exactly
/// the "hash table overflow" trigger of §3.4.
///
/// Thread-safe: the pool is shared by every worker lane. The accounting is
/// mutex-guarded, but the reclaimer runs OUTSIDE the lock — it re-enters the
/// buffer manager (TryShedFrame), which may already be held by the calling
/// thread mid-Fix; invoking it under the pool mutex would deadlock any two
/// lanes contending for memory. Register the reclaimer during setup, before
/// concurrent use.
class MemoryPool {
 public:
  explicit MemoryPool(size_t budget_bytes) : budget_(budget_bytes) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  /// Claims `bytes` from the pool; false if that would exceed the budget.
  /// On pressure, the registered reclaimer (the buffer manager shedding
  /// unfixed frames — §5.1 "shrinks as buffer slots are unfixed") is invoked
  /// repeatedly until enough space frees up or it reports nothing left.
  /// Out-of-line: this is the "memory/reserve" failpoint, which forces a
  /// denial to trigger §3.4 overflow handling at adversarial moments.
  bool Reserve(size_t bytes);

  /// Blocking grant for multi-query contention: Reserve(), and while the
  /// pool is full, park on the condition variable Release() signals — no
  /// busy spin — re-trying after each wakeup until `timeout` elapses, then
  /// kResourceExhausted. A denial while the pool HAS room (the
  /// "memory/reserve" failpoint, or a racing grant) also returns
  /// kResourceExhausted immediately rather than spinning on the deadline.
  Status ReserveWithDeadline(size_t bytes, std::chrono::milliseconds timeout);

  /// Parks until `bytes` would fit under the budget or `deadline` passes;
  /// returns whether the space was seen. NO reservation is made — callers
  /// re-run their own grant protocol (and may lose the race, in which case
  /// they wait again on the same deadline). Used by BufferManager::Fix with
  /// the buffer-manager mutex DROPPED, because the Release that frees the
  /// budget comes from a concurrent Unfix that needs that mutex.
  bool WaitForSpace(size_t bytes,
                    std::chrono::steady_clock::time_point deadline);

  /// True when `bytes` currently fits under the budget (snapshot; a racing
  /// grant can take the space immediately after). Distinguishes a forced or
  /// raced denial from genuine exhaustion on the waiting paths.
  bool HasSpaceFor(size_t bytes) const {
    MutexLock lock(mu_);
    return used_ + bytes <= budget_;
  }

  /// Deadline the blocking callers (BufferManager::Fix, Arena chunk growth)
  /// apply when a grant is denied and nothing is reclaimable. Zero — the
  /// default — keeps those paths exactly as non-blocking as before: deny
  /// immediately, §3.4 overflow handling takes over. The service layer sets
  /// a positive timeout so contending queries wait for each other's
  /// releases instead of failing or spinning.
  void set_wait_timeout(std::chrono::milliseconds timeout) {
    wait_timeout_ms_.store(timeout.count(), std::memory_order_relaxed);
  }
  std::chrono::milliseconds wait_timeout() const {
    return std::chrono::milliseconds(
        wait_timeout_ms_.load(std::memory_order_relaxed));
  }

  /// Registers a callback that frees some pool memory and returns true, or
  /// returns false when it has nothing left to give back.
  void SetReclaimer(std::function<bool()> reclaimer) {
    reclaimer_ = std::move(reclaimer);
  }

  void Release(size_t bytes) {
    {
      MutexLock lock(mu_);
      used_ = bytes > used_ ? 0 : used_ - bytes;
      if (waiters_ == 0) return;
    }
    // Wake grant waiters outside the lock; notify_all because waiters want
    // different sizes and any subset may now fit.
    release_cv_.notify_all();
  }

  size_t budget() const { return budget_; }
  size_t used() const {
    MutexLock lock(mu_);
    return used_;
  }
  size_t available() const {
    MutexLock lock(mu_);
    return budget_ - used_;
  }

 private:
  /// Grant/deny decision proper; Reserve wraps it with telemetry (denial
  /// counter, high-water gauge, grant-latency histogram when sampling).
  /// `used_after` reports the pool usage right after a successful grant.
  bool ReserveInner(size_t bytes, size_t* used_after);

  /// Guards used_ and waiters_ only; budget_ is immutable and reclaimer_ is
  /// set once at setup (see class comment).
  mutable Mutex mu_;
  size_t budget_;
  size_t used_ GUARDED_BY(mu_) = 0;
  /// Threads parked in WaitForSpace; Release() only notifies when > 0.
  size_t waiters_ GUARDED_BY(mu_) = 0;
  CondVar release_cv_;
  std::atomic<int64_t> wait_timeout_ms_{0};
  std::function<bool()> reclaimer_;
};

/// Chunked arena allocator over a MemoryPool, used for hash tables, chain
/// elements, and bit maps. Allocate() returns nullptr when the pool budget
/// is exhausted; callers translate that into hash-table-overflow handling.
/// All memory is returned to the pool on Reset() or destruction; individual
/// frees are not supported (matching the paper's per-operator memory use).
/// NOT thread-safe by design: every arena is owned by exactly one operator
/// core, and parallel sections give each fragment its own cores (only the
/// pool underneath is shared).
class Arena {
 public:
  /// `pool` may be nullptr for an unbounded arena (tests, tiny examples).
  /// Chunks default to one page so that a tight budget is not swallowed by
  /// a single oversized reservation.
  explicit Arena(MemoryPool* pool, size_t chunk_bytes = 8 * 1024)
      : pool_(pool), chunk_bytes_(chunk_bytes) {}

  ~Arena() { Reset(); }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// 8-byte-aligned allocation; nullptr when the pool is exhausted.
  void* Allocate(size_t bytes);

  /// Frees all chunks and releases their bytes to the pool.
  void Reset();

  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  MemoryPool* pool_;
  size_t chunk_bytes_;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace reldiv

#endif  // RELDIV_STORAGE_MEMORY_MANAGER_H_
