#include <memory>

#include "common/rng.h"
#include "exec/database.h"
#include "exec/hash_join.h"
#include "exec/mem_source.h"
#include "exec/merge_join.h"
#include "exec/sort.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace reldiv {
namespace {

class JoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.pool_bytes = 0;
    ASSERT_OK_AND_ASSIGN(db_, Database::Open(options));
  }

  Schema LeftSchema() {
    return Schema{Field{"lk", ValueType::kInt64},
                  Field{"lv", ValueType::kInt64}};
  }
  Schema RightSchema() {
    return Schema{Field{"rk", ValueType::kInt64},
                  Field{"rv", ValueType::kInt64}};
  }

  std::unique_ptr<Operator> Src(Schema schema, std::vector<Tuple> tuples) {
    return std::make_unique<MemSourceOperator>(std::move(schema),
                                               std::move(tuples));
  }

  /// Brute-force inner join for verification.
  std::vector<Tuple> NestedLoopJoin(const std::vector<Tuple>& left,
                                    const std::vector<Tuple>& right) {
    std::vector<Tuple> out;
    for (const Tuple& l : left) {
      for (const Tuple& r : right) {
        if (l.value(0).Compare(r.value(0)) == 0) {
          out.push_back(Tuple{l.value(0), l.value(1), r.value(0), r.value(1)});
        }
      }
    }
    return out;
  }

  std::vector<Tuple> NestedLoopSemi(const std::vector<Tuple>& left,
                                    const std::vector<Tuple>& right) {
    std::vector<Tuple> out;
    for (const Tuple& l : left) {
      for (const Tuple& r : right) {
        if (l.value(0).Compare(r.value(0)) == 0) {
          out.push_back(l);
          break;
        }
      }
    }
    return out;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(JoinTest, MergeJoinInnerSimple) {
  std::vector<Tuple> left = {T(1, 10), T(2, 20), T(2, 21), T(4, 40)};
  std::vector<Tuple> right = {T(2, 200), T(2, 201), T(3, 300), T(4, 400)};
  MergeJoinOperator join(db_->ctx(), Src(LeftSchema(), left),
                         Src(RightSchema(), right), {0}, {0},
                         MergeJoinMode::kInner);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
  EXPECT_EQ(Sorted(std::move(out)), Sorted(NestedLoopJoin(left, right)));
  EXPECT_EQ(join.output_schema().num_fields(), 4u);
}

TEST_F(JoinTest, MergeJoinSemiSimple) {
  std::vector<Tuple> left = {T(1, 10), T(2, 20), T(2, 21), T(4, 40)};
  std::vector<Tuple> right = {T(2, 200), T(2, 201), T(4, 400), T(9, 900)};
  MergeJoinOperator join(db_->ctx(), Src(LeftSchema(), left),
                         Src(RightSchema(), right), {0}, {0},
                         MergeJoinMode::kLeftSemi);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
  EXPECT_EQ(Sorted(std::move(out)), Sorted(NestedLoopSemi(left, right)));
}

TEST_F(JoinTest, MergeJoinEmptySides) {
  for (bool left_empty : {true, false}) {
    std::vector<Tuple> left = left_empty ? std::vector<Tuple>{}
                                         : std::vector<Tuple>{T(1, 1)};
    std::vector<Tuple> right = left_empty ? std::vector<Tuple>{T(1, 1)}
                                          : std::vector<Tuple>{};
    MergeJoinOperator join(db_->ctx(), Src(LeftSchema(), left),
                           Src(RightSchema(), right), {0}, {0},
                           MergeJoinMode::kInner);
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
    EXPECT_TRUE(out.empty());
  }
}

TEST_F(JoinTest, MergeJoinRandomizedAgainstNestedLoops) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Tuple> left, right;
    const size_t ln = rng.Uniform(60), rn = rng.Uniform(60);
    for (size_t i = 0; i < ln; ++i) {
      left.push_back(T(rng.UniformInt(0, 15), static_cast<int64_t>(i)));
    }
    for (size_t i = 0; i < rn; ++i) {
      right.push_back(T(rng.UniformInt(0, 15), static_cast<int64_t>(i)));
    }
    // Merge join needs sorted inputs.
    SortSpec spec;
    spec.keys = {0};
    auto sorted_left = std::make_unique<SortOperator>(
        db_->ctx(), Src(LeftSchema(), left), spec);
    auto sorted_right = std::make_unique<SortOperator>(
        db_->ctx(), Src(RightSchema(), right), spec);
    MergeJoinOperator join(db_->ctx(), std::move(sorted_left),
                           std::move(sorted_right), {0}, {0},
                           MergeJoinMode::kInner);
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
    EXPECT_EQ(Sorted(std::move(out)), Sorted(NestedLoopJoin(left, right)))
        << "trial " << trial;
  }
}

TEST_F(JoinTest, HashJoinInnerMatchesNestedLoops) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<Tuple> left, right;
    const size_t ln = rng.Uniform(80), rn = rng.Uniform(40);
    for (size_t i = 0; i < ln; ++i) {
      left.push_back(T(rng.UniformInt(0, 12), static_cast<int64_t>(i)));
    }
    for (size_t i = 0; i < rn; ++i) {
      right.push_back(T(rng.UniformInt(0, 12), static_cast<int64_t>(i)));
    }
    HashJoinOperator join(db_->ctx(), Src(LeftSchema(), left),
                          Src(RightSchema(), right), {0}, {0},
                          HashJoinMode::kInner, rn);
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
    EXPECT_EQ(Sorted(std::move(out)), Sorted(NestedLoopJoin(left, right)))
        << "trial " << trial;
  }
}

TEST_F(JoinTest, HashJoinSemiMatchesNestedLoops) {
  Rng rng(13);
  std::vector<Tuple> left, right;
  for (size_t i = 0; i < 100; ++i) {
    left.push_back(T(rng.UniformInt(0, 30), static_cast<int64_t>(i)));
  }
  for (size_t i = 0; i < 20; ++i) {
    right.push_back(T(rng.UniformInt(0, 30), static_cast<int64_t>(i)));
  }
  HashJoinOperator join(db_->ctx(), Src(LeftSchema(), left),
                        Src(RightSchema(), right), {0}, {0},
                        HashJoinMode::kLeftSemi, 20);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
  EXPECT_EQ(Sorted(std::move(out)), Sorted(NestedLoopSemi(left, right)));
  // Semi-join output schema is the probe schema, untouched.
  EXPECT_EQ(join.output_schema().num_fields(), 2u);
}

TEST_F(JoinTest, HashJoinEmptyBuild) {
  HashJoinOperator join(db_->ctx(), Src(LeftSchema(), {T(1, 1)}),
                        Src(RightSchema(), {}), {0}, {0},
                        HashJoinMode::kInner);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&join));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace reldiv
