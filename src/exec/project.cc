#include "exec/project.h"

// Header-only operator; translation unit kept for build uniformity.
