#include "exec/scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/metric_names.h"
#include "obs/telemetry.h"

namespace reldiv {

namespace {

/// Lane of the active region on this thread; 0 outside any region so that
/// serial code, the region caller, and non-pool threads all report lane 0.
thread_local size_t tls_lane = 0;
/// Distinguishes "lane 0 because caller" from "lane 0 because no region":
/// nested ParallelFor calls detect the region through this flag, not the
/// lane number.
thread_local bool tls_in_region = false;

/// Cached registry handles — registered once, then every update is a
/// relaxed atomic op. Per-lane task counters are a labelled family
/// (lane="0".."15"); the busy/idle histograms are only recorded under
/// Telemetry::sampling().
struct SchedulerTelemetry {
  TelemetryCounter* tasks[TaskScheduler::kMaxLanes];
  TelemetryCounter* steals;
  TelemetryGauge* queue_depth_high_water;
  Histogram* busy_us;
  Histogram* idle_us;

  static const SchedulerTelemetry& Get() {
    static const SchedulerTelemetry t = [] {
      SchedulerTelemetry s;
      MetricRegistry& reg = MetricRegistry::Global();
      for (size_t lane = 0; lane < TaskScheduler::kMaxLanes; ++lane) {
        s.tasks[lane] = reg.FindOrCreateCounter(
            metric_names::kSchedTasksTotal, "lane", std::to_string(lane));
      }
      s.steals = reg.FindOrCreateCounter(metric_names::kSchedStealsTotal);
      s.queue_depth_high_water =
          reg.FindOrCreateGauge(metric_names::kSchedQueueDepthHighWater);
      s.busy_us = reg.FindOrCreateHistogram(metric_names::kSchedBusyMicros);
      s.idle_us = reg.FindOrCreateHistogram(metric_names::kSchedIdleMicros);
      return s;
    }();
    return t;
  }
};

uint64_t ElapsedMicros(std::chrono::steady_clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

}  // namespace

TaskScheduler& TaskScheduler::Global() {
  static TaskScheduler scheduler;
  return scheduler;
}

size_t TaskScheduler::DefaultDop() {
  static const size_t dop = [] {
    const char* env = std::getenv("RELDIV_THREADS");
    if (env == nullptr || *env == '\0') return size_t{1};
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end == env || parsed < 1) return size_t{1};
    return std::min(static_cast<size_t>(parsed), kMaxLanes);
  }();
  return dop;
}

size_t TaskScheduler::CurrentLane() { return tls_lane; }

bool TaskScheduler::InParallelRegion() { return tls_in_region; }

TaskScheduler::TaskScheduler() = default;

TaskScheduler::~TaskScheduler() {
  // Swap the worker vector out under the lock, join outside it: joining
  // under pool_mu_ would deadlock a worker trying to re-take the lock, and
  // touching workers_ unlocked would break its GUARDED_BY contract.
  std::vector<std::thread> workers;
  {
    MutexLock lock(pool_mu_);
    stop_ = true;
    workers.swap(workers_);
  }
  pool_cv_.notify_all();
  for (std::thread& worker : workers) worker.join();
}

size_t TaskScheduler::num_workers() const {
  MutexLock lock(pool_mu_);
  return workers_.size();
}

void TaskScheduler::EnsureWorkers(size_t want) {
  MutexLock lock(pool_mu_);
  want = std::min(want, kMaxLanes - 1);
  while (workers_.size() < want) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Status TaskScheduler::ParallelFor(size_t dop, size_t num_morsels,
                                  const MorselFn& fn) {
  if (num_morsels == 0) return Status::OK();
  dop = std::min(dop, std::min(num_morsels, kMaxLanes));
  if (dop <= 1 || tls_in_region) {
    // Deterministic serial fallback; nested regions run inline on the
    // caller's lane (see class comment).
    for (size_t m = 0; m < num_morsels; ++m) {
      RELDIV_RETURN_NOT_OK(fn(m));
    }
    return Status::OK();
  }

  EnsureWorkers(dop - 1);

  // One top-level region at a time.
  MutexLock region_lock(region_mu_);

  Region region;
  region.fn = &fn;
  region.dop = dop;
  region.lanes.reserve(dop);
  for (size_t lane = 0; lane < dop; ++lane) {
    region.lanes.push_back(std::make_unique<LaneQueue>());
  }
  // Round-robin placement: morsel m starts on lane m % dop, so every lane
  // gets an even share before any stealing happens.
  for (size_t m = 0; m < num_morsels; ++m) {
    region.lanes[m % dop]->morsels.push_back(m);
  }
  region.remaining.store(num_morsels, std::memory_order_relaxed);
  if (Telemetry::counting()) {
    // Round-robin placement makes the deepest lane ceil(num_morsels/dop).
    SchedulerTelemetry::Get().queue_depth_high_water->UpdateMax(
        (num_morsels + dop - 1) / dop);
  }

  {
    MutexLock lock(pool_mu_);
    current_ = &region;
    ++region_seq_;
  }
  pool_cv_.notify_all();

  // The caller works too: lane 0.
  RunLane(&region, 0);

  // Retire the region from the pool BEFORE waiting: lane claims happen
  // under pool_mu_, so after this block no late-waking worker can claim a
  // lane (and bump active_workers) behind the wait below.
  {
    MutexLock lock(pool_mu_);
    current_ = nullptr;
  }

  UniqueMutexLock lock(region.mu);
  region.done_cv.wait(lock, [&region] {
    return region.remaining.load(std::memory_order_acquire) == 0 &&
           region.active_workers.load(std::memory_order_acquire) == 0;
  });
  return region.first_error;
}

void TaskScheduler::WorkerLoop() {
  uint64_t served_seq = 0;
  UniqueMutexLock lock(pool_mu_);
  while (true) {
    // Open-coded wait predicate (not a lambda) so the guarded reads of
    // stop_/current_/region_seq_ happen in this annotated scope, where the
    // analysis can see pool_mu_ is held.
    const bool sample_idle = Telemetry::sampling();
    std::chrono::steady_clock::time_point idle_start;
    if (sample_idle) idle_start = std::chrono::steady_clock::now();
    while (!stop_ && (current_ == nullptr || region_seq_ == served_seq)) {
      pool_cv_.wait(lock);
    }
    if (sample_idle) {
      SchedulerTelemetry::Get().idle_us->Record(ElapsedMicros(idle_start));
    }
    if (stop_) return;
    Region* region = current_;
    served_seq = region_seq_;
    const size_t lane = region->next_lane.fetch_add(1);
    if (lane >= region->dop) continue;  // region needs fewer lanes than pool
    // active_workers rises before pool_mu_ drops, so the region cannot be
    // retired while this worker holds a pointer to it.
    region->active_workers.fetch_add(1, std::memory_order_acq_rel);
    lock.unlock();

    RunLane(region, lane);

    {
      // The notify happens under region->mu: the instant active_workers
      // hits 0 the caller may destroy the stack-allocated Region, so this
      // worker must not touch it after releasing the mutex. The waiter can
      // only re-check its predicate once the mutex is free, i.e. after the
      // last region access here.
      MutexLock done_lock(region->mu);
      region->active_workers.fetch_sub(1, std::memory_order_acq_rel);
      region->done_cv.notify_all();
    }
    lock.lock();
  }
}

void TaskScheduler::RunLane(Region* region, size_t lane) {
  const size_t saved_lane = tls_lane;
  const bool saved_in_region = tls_in_region;
  tls_lane = lane;
  tls_in_region = true;
  const bool sample_busy = Telemetry::sampling();
  std::chrono::steady_clock::time_point busy_start;
  if (sample_busy) busy_start = std::chrono::steady_clock::now();

  // Own lane first, front-to-back (sequential morsel order).
  LaneQueue* own = region->lanes[lane].get();
  while (true) {
    size_t morsel = 0;
    {
      MutexLock lock(own->mu);
      if (own->morsels.empty()) break;
      morsel = own->morsels.front();
      own->morsels.pop_front();
    }
    ExecuteMorsel(region, morsel);
  }
  // Then steal from the other lanes, back-to-front, until everything is
  // drained.
  while (region->remaining.load(std::memory_order_acquire) > 0) {
    bool stole = false;
    for (size_t i = 1; i < region->dop; ++i) {
      LaneQueue* victim = region->lanes[(lane + i) % region->dop].get();
      size_t morsel = 0;
      {
        MutexLock lock(victim->mu);
        if (victim->morsels.empty()) continue;
        morsel = victim->morsels.back();
        victim->morsels.pop_back();
      }
      stole = true;
      if (Telemetry::counting()) SchedulerTelemetry::Get().steals->Add(1);
      ExecuteMorsel(region, morsel);
      break;
    }
    // Nothing left to steal: the still-remaining morsels are in flight on
    // other lanes; this lane is finished.
    if (!stole) break;
  }

  if (sample_busy) {
    SchedulerTelemetry::Get().busy_us->Record(ElapsedMicros(busy_start));
  }
  tls_lane = saved_lane;
  tls_in_region = saved_in_region;
}

void TaskScheduler::ExecuteMorsel(Region* region, size_t morsel) {
  if (Telemetry::counting()) {
    SchedulerTelemetry::Get().tasks[tls_lane]->Add(1);
  }
  if (!region->failed.load(std::memory_order_acquire)) {
    Status status = (*region->fn)(morsel);
    if (!status.ok()) {
      MutexLock lock(region->mu);
      if (region->first_error.ok()) {
        region->first_error = std::move(status);
      }
      region->failed.store(true, std::memory_order_release);
    }
  }
  // After a failure the remaining morsels drain without running.
  if (region->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify under region->mu so the last retirement cannot slip between
    // the caller's predicate check and its wait (and so a worker retiring
    // the final morsel never touches the Region after the caller could
    // have destroyed it — see WorkerLoop).
    MutexLock lock(region->mu);
    region->done_cv.notify_all();
  }
}

}  // namespace reldiv
