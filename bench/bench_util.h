#ifndef RELDIV_BENCH_BENCH_UTIL_H_
#define RELDIV_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "cost/io_cost.h"
#include "division/division.h"
#include "exec/database.h"
#include "workload/generator.h"

namespace reldiv {
namespace bench {

/// Reduced-size mode for CI smoke runs (tools/check_all.sh): benches shrink
/// their workloads/sweeps when RELDIV_BENCH_SMOKE is set so that every
/// binary still exercises its full measurement + JSON-emission path in
/// seconds. Absolute numbers from a smoke run are meaningless.
inline bool SmokeMode() { return std::getenv("RELDIV_BENCH_SMOKE") != nullptr; }

/// Database configured like the paper's experimental system (§5.1): 256 KB
/// buffer/memory pool, 100 KB sort space, memory-backed simulated disk.
inline DatabaseOptions PaperDatabaseOptions() {
  DatabaseOptions options;
  options.pool_bytes = kDefaultBufferPoolBytes;
  options.sort_space_bytes = kDefaultSortSpaceBytes;
  return options;
}

/// Runs one division experiment cold (buffer pool purged), returning the
/// paper-style cost: CPU cost from measured operation counts under the
/// Table 1 unit times, plus I/O cost computed from the file system
/// statistics with the Table 3 weights. Wall-clock time is kept alongside.
inline Result<ExperimentalCost> RunDivision(Database* db,
                                            const DivisionQuery& query,
                                            DivisionAlgorithm algorithm,
                                            const DivisionOptions& options =
                                                {},
                                            uint64_t* quotient_size =
                                                nullptr) {
  RELDIV_RETURN_NOT_OK(db->buffer_manager()->FlushAll());
  RELDIV_RETURN_NOT_OK(db->buffer_manager()->DropAll());
  const DiskStats io_before = db->disk()->stats();
  const CpuCounters cpu_before = *db->counters();
  const auto t0 = std::chrono::steady_clock::now();
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> plan,
                          MakeDivisionPlan(db->ctx(), query, algorithm,
                                           options));
  RELDIV_ASSIGN_OR_RETURN(std::vector<Tuple> quotient,
                          CollectAll(plan.get()));
  const auto t1 = std::chrono::steady_clock::now();
  if (quotient_size != nullptr) *quotient_size = quotient.size();
  ExperimentalCost cost;
  cost.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  cost.cpu_counters = *db->counters();
  cost.cpu_counters.comparisons -= cpu_before.comparisons;
  cost.cpu_counters.hashes -= cpu_before.hashes;
  cost.cpu_counters.moves -= cpu_before.moves;
  cost.cpu_counters.bit_ops -= cpu_before.bit_ops;
  cost.cpu_ms = CpuCostMs(cost.cpu_counters);
  cost.io_stats = db->disk()->stats() - io_before;
  cost.io_ms = IoCostMs(cost.io_stats);
  return cost;
}

/// Prints a horizontal rule sized for `width` characters.
inline void Rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ---------------------------------------------------------------------------
// Machine-readable benchmark emission. Every bench binary builds one
// BenchReporter and writes BENCH_<name>.json on exit; tools/bench_report.py
// validates the schema and diffs two result directories. Schema (version 1):
//
//   { "schema_version": 1, "name": "...", "params": {...},
//     "repetitions": N,
//     "rows": [ { "label": "...", "repetitions": n,
//                 "median_wall_ns": x, "p90_wall_ns": y,
//                 "counters": {"comparisons":..,"hashes":..,"moves":..,
//                              "bit_ops":..},
//                 "io": {"transfers":..,"seeks":..,"kbytes":..,
//                        "reads":..,"writes":..},
//                 "values": {"free-form metric": number, ...} } ] }
// ---------------------------------------------------------------------------

/// One measured row: a label, wall-time samples, the Table 1 operation
/// counter deltas, the simulated-disk statistic deltas, and free-form
/// numeric metrics (model milliseconds, speedups, phase counts, ...).
struct BenchRow {
  std::string label;
  std::vector<double> wall_ns;
  CpuCounters counters;
  DiskStats io;
  std::vector<std::pair<std::string, double>> values;

  void AddWallMs(double ms) { wall_ns.push_back(ms * 1e6); }
  void AddValue(const std::string& key, double value) {
    values.emplace_back(key, value);
  }
};

/// Nearest-rank percentile of `samples` (p in [0, 100]); 0 when empty.
inline double PercentileNs(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  size_t index = rank <= 1 ? 0 : static_cast<size_t>(rank + 0.999999) - 1;
  if (index >= samples.size()) index = samples.size() - 1;
  return samples[index];
}

/// Collects rows and parameters and serializes them as BENCH_<name>.json in
/// the working directory (or $RELDIV_BENCH_DIR when set).
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}

  void AddParam(const std::string& key, double value) {
    numeric_params_.emplace_back(key, value);
  }
  void AddParam(const std::string& key, const std::string& value) {
    string_params_.emplace_back(key, value);
  }

  BenchRow* AddRow(std::string label) {
    rows_.push_back(BenchRow{});
    rows_.back().label = std::move(label);
    return &rows_.back();
  }

  /// Row from one paper-style measured run (bench_util RunDivision output).
  BenchRow* AddCostRow(const std::string& label, const ExperimentalCost& cost) {
    BenchRow* row = AddRow(label);
    row->AddWallMs(cost.wall_ms);
    row->counters = cost.cpu_counters;
    row->io = cost.io_stats;
    row->AddValue("cpu_ms", cost.cpu_ms);
    row->AddValue("io_ms", cost.io_ms);
    row->AddValue("total_ms", cost.total_ms());
    return row;
  }

  std::string ToJson() const {
    std::string json = "{\"schema_version\":1,\"name\":\"" + Escape(name_) +
                       "\",\"params\":{";
    bool first = true;
    for (const auto& [key, value] : string_params_) {
      if (!first) json += ",";
      first = false;
      json += "\"" + Escape(key) + "\":\"" + Escape(value) + "\"";
    }
    for (const auto& [key, value] : numeric_params_) {
      if (!first) json += ",";
      first = false;
      json += "\"" + Escape(key) + "\":" + Num(value);
    }
    size_t repetitions = 1;
    for (const BenchRow& row : rows_) {
      repetitions = std::max(repetitions, std::max<size_t>(
                                              1, row.wall_ns.size()));
    }
    json += "},\"repetitions\":" + std::to_string(repetitions) + ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const BenchRow& row = rows_[i];
      if (i > 0) json += ",";
      json += "{\"label\":\"" + Escape(row.label) + "\",\"repetitions\":" +
              std::to_string(std::max<size_t>(1, row.wall_ns.size())) +
              ",\"median_wall_ns\":" + Num(PercentileNs(row.wall_ns, 50)) +
              ",\"p90_wall_ns\":" + Num(PercentileNs(row.wall_ns, 90)) +
              ",\"counters\":" + row.counters.ToJson() +
              ",\"io\":" + row.io.ToJson() + ",\"values\":{";
      for (size_t v = 0; v < row.values.size(); ++v) {
        if (v > 0) json += ",";
        json += "\"" + Escape(row.values[v].first) +
                "\":" + Num(row.values[v].second);
      }
      json += "}}";
    }
    json += "]}";
    return json;
  }

  /// Writes BENCH_<name>.json; reports the path on stdout. Returns false
  /// (with a message on stderr) when the file cannot be written.
  bool WriteFile() const {
    std::string dir = ".";
    if (const char* env = std::getenv("RELDIV_BENCH_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  static std::string Num(double v) {
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
      std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    } else {
      std::snprintf(buf, sizeof buf, "%.6g", v);
    }
    return buf;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> string_params_;
  std::vector<std::pair<std::string, double>> numeric_params_;
  std::vector<BenchRow> rows_;
};

}  // namespace bench
}  // namespace reldiv

#endif  // RELDIV_BENCH_BENCH_UTIL_H_
