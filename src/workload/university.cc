#include "workload/university.h"

#include <set>
#include <string>

#include "common/rng.h"

namespace reldiv {

namespace {

Schema CoursesSchema() {
  return Schema{Field{"course_no", ValueType::kInt64},
                Field{"title", ValueType::kString}};
}

Schema TranscriptSchema() {
  return Schema{Field{"student_id", ValueType::kInt64},
                Field{"course_no", ValueType::kInt64},
                Field{"grade", ValueType::kInt64}};
}

}  // namespace

Result<UniversityTables> LoadUniversity(Database* db,
                                        const UniversitySpec& spec) {
  UniversityTables tables;
  RELDIV_ASSIGN_OR_RETURN(tables.courses,
                          db->CreateTable("courses", CoursesSchema()));
  RELDIV_ASSIGN_OR_RETURN(tables.transcript,
                          db->CreateTable("transcript", TranscriptSchema()));
  Rng rng(spec.seed);

  for (uint64_t c = 0; c < spec.num_courses; ++c) {
    const bool is_db = c < spec.num_database_courses;
    const std::string title =
        (is_db ? "Database " : "Course ") + std::to_string(c + 1);
    RELDIV_RETURN_NOT_OK(db->Insert(
        "courses", Tuple{Value::Int64(static_cast<int64_t>(c)),
                         Value::String(title)}));
  }

  auto enroll = [&](uint64_t student, uint64_t course) -> Status {
    const int64_t grade = static_cast<int64_t>(rng.Uniform(5)) + 1;
    return db->Insert("transcript",
                      Tuple{Value::Int64(static_cast<int64_t>(student)),
                            Value::Int64(static_cast<int64_t>(course)),
                            Value::Int64(grade)});
  };

  for (uint64_t s = 0; s < spec.num_students; ++s) {
    std::set<uint64_t> courses_taken;
    if (s < spec.all_courses_students) {
      for (uint64_t c = 0; c < spec.num_courses; ++c) courses_taken.insert(c);
    } else if (s < spec.db_students) {
      for (uint64_t c = 0; c < spec.num_database_courses; ++c) {
        courses_taken.insert(c);
      }
      // Plus a few random others, but never the full set.
      const uint64_t extra = rng.Uniform(
          spec.num_courses - spec.num_database_courses);
      for (uint64_t i = 0; i < extra; ++i) {
        courses_taken.insert(spec.num_database_courses +
                             rng.Uniform(spec.num_courses -
                                         spec.num_database_courses));
      }
    } else {
      // Random subset that misses at least one database course.
      const uint64_t count = rng.Uniform(spec.num_courses) + 1;
      for (uint64_t i = 0; i < count; ++i) {
        courses_taken.insert(rng.Uniform(spec.num_courses));
      }
      courses_taken.erase(rng.Uniform(spec.num_database_courses));
    }
    for (uint64_t c : courses_taken) {
      RELDIV_RETURN_NOT_OK(enroll(s, c));
    }
  }
  return tables;
}

Result<UniversityTables> LoadFigure2Example(Database* db) {
  UniversityTables tables;
  RELDIV_ASSIGN_OR_RETURN(tables.courses,
                          db->CreateTable("courses", CoursesSchema()));
  RELDIV_ASSIGN_OR_RETURN(tables.transcript,
                          db->CreateTable("transcript", TranscriptSchema()));
  // Courses: Database1 (no 1), Database2 (no 2), Optics (no 3).
  RELDIV_RETURN_NOT_OK(db->Insert(
      "courses", Tuple{Value::Int64(1), Value::String("Database1")}));
  RELDIV_RETURN_NOT_OK(db->Insert(
      "courses", Tuple{Value::Int64(2), Value::String("Database2")}));
  RELDIV_RETURN_NOT_OK(db->Insert(
      "courses", Tuple{Value::Int64(3), Value::String("Optics")}));
  // Transcript: Ann=100, Barb=200, in the paper's processing order.
  RELDIV_RETURN_NOT_OK(db->Insert(
      "transcript",
      Tuple{Value::Int64(100), Value::Int64(1), Value::Int64(4)}));
  RELDIV_RETURN_NOT_OK(db->Insert(
      "transcript",
      Tuple{Value::Int64(200), Value::Int64(2), Value::Int64(3)}));
  RELDIV_RETURN_NOT_OK(db->Insert(
      "transcript",
      Tuple{Value::Int64(100), Value::Int64(2), Value::Int64(5)}));
  RELDIV_RETURN_NOT_OK(db->Insert(
      "transcript",
      Tuple{Value::Int64(200), Value::Int64(3), Value::Int64(4)}));
  return tables;
}

}  // namespace reldiv
