#ifndef RELDIV_EXEC_HASH_AGGREGATE_H_
#define RELDIV_EXEC_HASH_AGGREGATE_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/aggregate.h"
#include "exec/exec_context.h"
#include "exec/hash_table.h"
#include "exec/operator.h"

namespace reldiv {

/// Hash-based aggregate function operator (§2.2.2): output groups live in a
/// main-memory hash table; each input tuple is folded into its group's
/// accumulators. Only the output fits in memory, so the input may be far
/// larger than the hash table — the property that makes this family fast.
/// Output order is hash-table bucket order.
class HashAggregateOperator : public Operator {
 public:
  /// `expected_groups` sizes the hash table (0 = default).
  HashAggregateOperator(ExecContext* ctx, std::unique_ptr<Operator> child,
                        std::vector<size_t> group_indices,
                        std::vector<AggSpec> aggs,
                        uint64_t expected_groups = 0);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status Close() override;

 private:
  Status BuildSchema();

  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
  std::vector<size_t> group_indices_;
  std::vector<AggSpec> aggs_;
  uint64_t expected_groups_;
  Schema schema_;
  Status init_status_;

  std::unique_ptr<Arena> arena_;
  std::unique_ptr<TupleHashTable> table_;
  TupleBatch input_batch_{1};     ///< build-phase child pull buffer
  std::vector<uint64_t> hashes_;  ///< staged-probe scratch, one per tuple
  std::vector<AggState> states_;
  std::vector<const Tuple*> group_order_;
  std::vector<std::pair<const Tuple*, size_t>> emit_entries_;
  size_t emit_pos_ = 0;
};

}  // namespace reldiv

#endif  // RELDIV_EXEC_HASH_AGGREGATE_H_
