#ifndef RELDIV_WORKLOAD_GENERATOR_H_
#define RELDIV_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "common/schema.h"
#include "common/tuple.h"
#include "exec/database.h"
#include "exec/relation.h"

namespace reldiv {

/// Parameters of a synthetic division workload over two int64 columns:
/// dividend(quotient_id, divisor_id) ÷ divisor(divisor_id).
///
/// The paper's analytical and experimental setting is the exact case
/// R = Q × S (`candidate_completeness` = 1, no non-matching tuples, no
/// duplicates); the other knobs produce the §4.6 speculation scenarios —
/// dividend tuples that match no divisor tuple and quotient candidates that
/// do not participate in the quotient — plus duplicate injection for
/// exercising each algorithm's duplicate handling.
struct WorkloadSpec {
  uint64_t divisor_cardinality = 25;  ///< |S|
  uint64_t quotient_candidates = 25;  ///< distinct quotient values in R

  /// Fraction of candidates receiving ALL divisor values (the quotient).
  /// Remaining candidates get a random strict subset.
  double candidate_completeness = 1.0;

  /// Extra dividend tuples whose divisor value is outside the divisor
  /// relation (e.g. the physics course of example 2).
  uint64_t nonmatching_tuples = 0;

  /// Extra exact duplicates injected into the dividend / divisor.
  uint64_t dividend_duplicates = 0;
  uint64_t divisor_duplicates = 0;

  uint64_t seed = 42;
  bool shuffle = true;  ///< random dividend order (inputs arrive unsorted)
};

/// A generated workload plus its ground truth.
struct GeneratedWorkload {
  Schema dividend_schema;
  Schema divisor_schema;
  std::vector<Tuple> dividend;
  std::vector<Tuple> divisor;
  std::vector<Tuple> expected_quotient;  ///< sorted by quotient_id
};

/// Generates a workload deterministically from `spec.seed`.
GeneratedWorkload GenerateWorkload(const WorkloadSpec& spec);

/// The paper's exact experimental configuration for one (|S|, |Q|) cell:
/// R = Q × S, duplicate-free, every dividend tuple valid.
WorkloadSpec PaperCell(uint64_t divisor_tuples, uint64_t quotient_tuples);

/// Loads a generated workload into `db` as tables `<prefix>_dividend` and
/// `<prefix>_divisor`.
Status LoadWorkload(Database* db, const GeneratedWorkload& workload,
                    const std::string& prefix, Relation* dividend,
                    Relation* divisor);

}  // namespace reldiv

#endif  // RELDIV_WORKLOAD_GENERATOR_H_
