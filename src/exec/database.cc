#include "exec/database.h"

#include "common/row_codec.h"

namespace reldiv {

Result<std::unique_ptr<Database>> Database::Open(
    const DatabaseOptions& options) {
  auto db = std::make_unique<Database>(Passkey{});
  if (options.file_backed_disk) {
    RELDIV_ASSIGN_OR_RETURN(db->disk_,
                            SimDisk::OpenFileBacked(options.disk_path));
  } else {
    db->disk_ = std::make_unique<SimDisk>();
  }
  db->pool_ = options.pool_bytes == 0
                  ? nullptr
                  : std::make_unique<MemoryPool>(options.pool_bytes);
  db->buffer_manager_ =
      std::make_unique<BufferManager>(db->disk_.get(), db->pool_.get());
  if (db->pool_ != nullptr) {
    // Under memory pressure the buffer pool gives back unfixed frames.
    BufferManager* bm = db->buffer_manager_.get();
    db->pool_->SetReclaimer([bm] { return bm->TryShedFrame(); });
  }
  db->ctx_ = std::make_unique<ExecContext>(db->disk_.get(),
                                           db->buffer_manager_.get(),
                                           db->pool_.get(), &db->counters_);
  db->ctx_->set_sort_space_bytes(options.sort_space_bytes);
  return db;
}

Database::~Database() = default;

Result<Relation> Database::CreateTable(const std::string& name,
                                       Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::InvalidArgument("table '" + name + "' already exists");
  }
  NamedTable table;
  table.schema = schema;
  table.store = std::make_unique<RecordFile>(disk_.get(),
                                             buffer_manager_.get(), name);
  RecordStore* store = table.store.get();
  tables_.emplace(name, std::move(table));
  return Relation{std::move(schema), store};
}

Result<Relation> Database::CreateTempTable(const std::string& name,
                                           Schema schema) {
  if (tables_.count(name) != 0) {
    return Status::InvalidArgument("table '" + name + "' already exists");
  }
  NamedTable table;
  table.schema = schema;
  table.store = std::make_unique<VirtualDevice>(pool_.get(), name);
  RecordStore* store = table.store.get();
  tables_.emplace(name, std::move(table));
  return Relation{std::move(schema), store};
}

Result<Relation> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  return Relation{it->second.schema, it->second.store.get()};
}

Status Database::Insert(const std::string& name, const Tuple& tuple) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + name + "'");
  }
  NamedTable& table = it->second;
  RowCodec codec(table.schema);
  std::string buffer;
  RELDIV_RETURN_NOT_OK(codec.Encode(tuple, &buffer));
  RELDIV_ASSIGN_OR_RETURN(Rid rid, table.store->Append(Slice(buffer)));
  for (TableIndex* index : table.indexes) {
    RELDIV_RETURN_NOT_OK(index->Add(tuple, rid));
  }
  for (const UpdateObserver& observer : observers_) {
    observer(name, table.store.get(), tuple, /*inserted=*/true);
  }
  return Status::OK();
}

Result<uint64_t> Database::DeleteWhere(
    const std::string& table,
    const std::function<bool(const Tuple&)>& predicate) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + table + "'");
  }
  NamedTable& named = it->second;
  auto* file = dynamic_cast<RecordFile*>(named.store.get());
  if (file == nullptr) {
    return Status::NotSupported("DeleteWhere on a temporary table");
  }
  // Collect victims first (the scan pins pages; deletion re-fixes them).
  RowCodec codec(named.schema);
  std::vector<std::pair<Rid, Tuple>> victims;
  {
    RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<RecordScan> scan,
                            named.store->OpenScan());
    while (true) {
      RecordRef ref;
      bool has = false;
      RELDIV_RETURN_NOT_OK(scan->Next(&ref, &has));
      if (!has) break;
      Tuple tuple;
      RELDIV_RETURN_NOT_OK(codec.Decode(ref.payload, &tuple));
      if (predicate(tuple)) victims.emplace_back(ref.rid, std::move(tuple));
    }
    RELDIV_RETURN_NOT_OK(scan->Close());
  }
  for (const auto& [rid, tuple] : victims) {
    RELDIV_RETURN_NOT_OK(file->Delete(rid));
    for (TableIndex* index : named.indexes) {
      RELDIV_RETURN_NOT_OK(index->Remove(tuple, rid));
    }
    for (const UpdateObserver& observer : observers_) {
      observer(table, named.store.get(), tuple, /*inserted=*/false);
    }
  }
  return static_cast<uint64_t>(victims.size());
}

Result<TableIndex*> Database::CreateIndex(
    const std::string& index_name, const std::string& table,
    const std::vector<std::string>& columns) {
  if (indexes_.count(index_name) != 0) {
    return Status::InvalidArgument("index '" + index_name +
                                   "' already exists");
  }
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named '" + table + "'");
  }
  NamedTable& named = it->second;
  RELDIV_ASSIGN_OR_RETURN(std::vector<size_t> indices,
                          named.schema.FieldIndices(columns));
  auto index = std::make_unique<TableIndex>(
      disk_.get(), buffer_manager_.get(), named.schema.Project(indices),
      indices);

  // Index the existing rows.
  RowCodec codec(named.schema);
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<RecordScan> scan,
                          named.store->OpenScan());
  while (true) {
    RecordRef ref;
    bool has = false;
    RELDIV_RETURN_NOT_OK(scan->Next(&ref, &has));
    if (!has) break;
    Tuple tuple;
    RELDIV_RETURN_NOT_OK(codec.Decode(ref.payload, &tuple));
    RELDIV_RETURN_NOT_OK(index->Add(tuple, ref.rid));
  }
  RELDIV_RETURN_NOT_OK(scan->Close());

  TableIndex* raw = index.get();
  named.indexes.push_back(raw);
  indexes_.emplace(index_name, std::move(index));
  return raw;
}

Result<TableIndex*> Database::GetIndex(const std::string& index_name) const {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named '" + index_name + "'");
  }
  return it->second.get();
}

void Database::ResetStats() {
  disk_->ResetStats();
  counters_.Reset();
  buffer_manager_->ResetStats();
}

}  // namespace reldiv
