#ifndef RELDIV_EXEC_SCAN_H_
#define RELDIV_EXEC_SCAN_H_

#include <memory>

#include "common/row_codec.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "exec/relation.h"

namespace reldiv {

/// Sequential file scan decoding stored records into tuples. The underlying
/// RecordScan keeps the current page fixed; decoding copies values out so the
/// produced Tuple is independent of the pin.
///
/// Batch-native: NextBatch() decodes straight into the batch's reused tuple
/// slots; Next() is a thin adapter over the operator's own batches.
class ScanOperator : public Operator {
 public:
  ScanOperator(ExecContext* ctx, Relation relation)
      : ctx_(ctx), relation_(relation), codec_(relation.schema) {}

  const Schema& output_schema() const override { return relation_.schema; }

  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status NextBatch(TupleBatch* batch, bool* has_more) override;
  bool IsBatchNative() const override { return true; }
  Status Close() override;

 private:
  ExecContext* ctx_;
  Relation relation_;
  RowCodec codec_;
  std::unique_ptr<RecordScan> scan_;
  std::vector<RecordRef> refs_;  ///< scratch for RecordScan::NextBatch
  TupleAdapter adapter_;
};

}  // namespace reldiv

#endif  // RELDIV_EXEC_SCAN_H_
