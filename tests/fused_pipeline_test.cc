// The fused-execution contract (DESIGN.md §12): a fused pipeline is an
// ordinary Operator whose quotient AND Table 1 counter totals are
// bit-identical to the equivalent chain of virtual operators — in every
// hash-division mode, at every worker count, under contract checking and
// profiling, and when the consumer abandons the stream early. "Fusion may
// never change what is counted, only how fast it runs."

#include <memory>
#include <string>
#include <vector>

#include "division/division.h"
#include "division/hash_division.h"
#include "exec/contract_check.h"
#include "exec/database.h"
#include "exec/filter.h"
#include "exec/fused/fused_division.h"
#include "exec/fused/fused_pipeline.h"
#include "exec/kernels/kernels.h"
#include "exec/mem_source.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "gtest/gtest.h"
#include "obs/profiled_operator.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace reldiv {
namespace {

struct RunOutcome {
  std::vector<Tuple> quotient;  ///< in emission order, NOT sorted
  CpuCounters cpu;
};

class FusedPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    WorkloadSpec spec;
    spec.divisor_cardinality = 24;
    spec.quotient_candidates = 400;
    spec.candidate_completeness = 0.65;
    spec.nonmatching_tuples = 800;
    spec.dividend_duplicates = 300;
    spec.divisor_duplicates = 8;
    spec.seed = 23;
    workload_ = GenerateWorkload(spec);
    ASSERT_OK_AND_ASSIGN(db_, Database::Open());
    ASSERT_OK(
        LoadWorkload(db_.get(), workload_, "fp", &dividend_, &divisor_));
    ASSERT_OK_AND_ASSIGN(
        resolved_,
        ResolveDivision({dividend_, divisor_, {"divisor_id"}}));
  }

  std::unique_ptr<Operator> MakeVirtual(const DivisionOptions& options) {
    return std::make_unique<HashDivisionOperator>(
        db_->ctx(), std::make_unique<ScanOperator>(db_->ctx(), dividend_),
        std::make_unique<ScanOperator>(db_->ctx(), divisor_),
        resolved_.match_attrs, resolved_.quotient_attrs, options);
  }

  std::unique_ptr<Operator> MakeFused(const DivisionOptions& options) {
    return fused::MakeFusedHashDivision(
        db_->ctx(), resolved_,
        std::make_unique<ScanOperator>(db_->ctx(), divisor_), options);
  }

  /// Runs a freshly built plan cold and captures quotient + counter deltas.
  /// The owning overload destroys the plan on return; use the non-owning
  /// overload when the test needs to inspect the operator afterwards.
  Result<RunOutcome> Run(std::unique_ptr<Operator> plan, size_t dop = 1) {
    return Run(plan.get(), dop);
  }

  Result<RunOutcome> Run(Operator* plan, size_t dop = 1) {
    ExecContext* ctx = db_->ctx();
    RELDIV_RETURN_NOT_OK(db_->buffer_manager()->FlushAll());
    RELDIV_RETURN_NOT_OK(db_->buffer_manager()->DropAll());
    ctx->set_dop(dop);
    ctx->ResetMoveAccumulator();
    const CpuCounters before = *ctx->counters();
    Result<std::vector<Tuple>> quotient = CollectAll(plan);
    const CpuCounters after = *ctx->counters();
    ctx->set_dop(1);
    RELDIV_RETURN_NOT_OK(quotient.status());
    RunOutcome outcome;
    outcome.quotient = quotient.MoveValue();
    outcome.cpu = after - before;
    return outcome;
  }

  static void ExpectIdentical(const RunOutcome& base, const RunOutcome& run,
                              const std::string& what) {
    EXPECT_EQ(run.quotient, base.quotient) << what << ": quotient drifted";
    EXPECT_EQ(run.cpu.comparisons, base.cpu.comparisons) << what;
    EXPECT_EQ(run.cpu.hashes, base.cpu.hashes) << what;
    EXPECT_EQ(run.cpu.moves, base.cpu.moves) << what;
    EXPECT_EQ(run.cpu.bit_ops, base.cpu.bit_ops) << what;
  }

  GeneratedWorkload workload_;
  std::unique_ptr<Database> db_;
  Relation dividend_, divisor_;
  ResolvedDivision resolved_;
};

TEST_F(FusedPipelineTest, MatchesVirtualInEveryModeAtEveryDop) {
  struct Mode {
    const char* name;
    DivisionOptions options;
  };
  std::vector<Mode> modes;
  modes.push_back({"plain", {}});
  {
    DivisionOptions o;
    o.early_output = true;
    modes.push_back({"early_output", o});
  }
  {
    // Counters instead of bitmaps double-count dividend duplicates, but
    // fused and virtual must double-count IDENTICALLY.
    DivisionOptions o;
    o.counters_instead_of_bitmaps = true;
    modes.push_back({"counters", o});
  }
  {
    DivisionOptions o;
    o.parallel_fragments = 5;
    modes.push_back({"parallel_fragments", o});
  }
  for (const Mode& mode : modes) {
    ASSERT_OK_AND_ASSIGN(RunOutcome virt, Run(MakeVirtual(mode.options)));
    for (size_t dop : {1, 4, 8}) {
      ASSERT_OK_AND_ASSIGN(RunOutcome fus, Run(MakeFused(mode.options), dop));
      ExpectIdentical(virt, fus,
                      std::string(mode.name) + " dop=" + std::to_string(dop));
    }
  }
}

TEST_F(FusedPipelineTest, FusedFilterMatchesFilterOperator) {
  // Filter the dividend to divisor_id < 12 on both sides: FilterOperator
  // with an interpreted predicate vs the fused compare-kernel stage. Both
  // count nothing for the predicate itself, so totals still match.
  const int64_t bound = 12;
  DivisionOptions options;
  auto scan = std::make_unique<ScanOperator>(db_->ctx(), dividend_);
  auto filtered = std::make_unique<FilterOperator>(
      std::move(scan),
      [bound](const Tuple& t) { return t.value(1).int64() < bound; });
  auto virt = std::make_unique<HashDivisionOperator>(
      db_->ctx(), std::move(filtered),
      std::make_unique<ScanOperator>(db_->ctx(), divisor_),
      resolved_.match_attrs, resolved_.quotient_attrs, options);

  fused::FusedFilter filter;
  filter.enabled = true;
  filter.column = 1;
  filter.op = kernels::CmpOp::kLt;
  filter.constant = bound;
  auto fus = fused::MakeFusedHashDivision(
      db_->ctx(), resolved_,
      std::make_unique<ScanOperator>(db_->ctx(), divisor_), options, filter);

  ASSERT_OK_AND_ASSIGN(RunOutcome virt_out, Run(std::move(virt)));
  ASSERT_OK_AND_ASSIGN(RunOutcome fus_out, Run(std::move(fus)));
  ExpectIdentical(virt_out, fus_out, "filtered");
}

TEST_F(FusedPipelineTest, ComposesWithContractCheckAndProfiling) {
  // A fused pipeline is an ordinary Operator: runtime protocol validation
  // and the metrics tree wrap it like anything else.
  DivisionOptions options;
  ASSERT_OK_AND_ASSIGN(RunOutcome plain, Run(MakeFused(options)));

  db_->ctx()->set_profiling(true);
  auto wrapped = std::make_unique<ContractCheckOperator>(
      db_->ctx(),
      MaybeProfile(db_->ctx(), MakeFused(options), "fused-hash-division"),
      "fused-hash-division");
  // Non-owning Run: `wrapped` must outlive the violations() read below.
  ASSERT_OK_AND_ASSIGN(RunOutcome checked, Run(wrapped.get()));
  EXPECT_EQ(wrapped->violations(), 0u);
  db_->ctx()->set_profiling(false);
  EXPECT_EQ(checked.quotient, plain.quotient);
  // Profiling wrappers charge no Table 1 operations either.
  ExpectIdentical(plain, checked, "contract-checked + profiled");
}

TEST_F(FusedPipelineTest, DividePlumbsFusedPipelines) {
  DivisionQuery query{dividend_, divisor_, {"divisor_id"}};
  DivisionOptions options;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> virt,
      Divide(db_->ctx(), query, DivisionAlgorithm::kHashDivision, options));
  options.fused_pipelines = true;
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> fus,
      Divide(db_->ctx(), query, DivisionAlgorithm::kHashDivision, options));
  EXPECT_EQ(fus, virt);
  // And under contract checks, end to end.
  db_->ctx()->set_contract_checks(true);
  ASSERT_OK_AND_ASSIGN(
      std::vector<Tuple> checked,
      Divide(db_->ctx(), query, DivisionAlgorithm::kHashDivision, options));
  db_->ctx()->set_contract_checks(false);
  EXPECT_EQ(checked, virt);
}

TEST_F(FusedPipelineTest, EarlyAbandonFlushesNothingLate) {
  // The Close() audit: pull one small batch of an early-output stream, then
  // Close with input still pending. Every counter delta must be charged by
  // the time NextBatch returns — an operator that buffered counts and
  // flushed them in Close would show a difference between the two snapshots
  // below. Both lanes consume input in identical ctx-capacity batches until
  // the 8-slot output batch fills, so their partial-drain totals must also
  // agree exactly.
  DivisionOptions options;
  options.early_output = true;
  CpuCounters drained[2], closed[2];
  for (int lane = 0; lane < 2; ++lane) {
    std::unique_ptr<Operator> plan =
        lane == 0 ? MakeVirtual(options) : MakeFused(options);
    ASSERT_OK(db_->buffer_manager()->FlushAll());
    ASSERT_OK(db_->buffer_manager()->DropAll());
    db_->ctx()->ResetMoveAccumulator();
    const CpuCounters before = *db_->ctx()->counters();
    ASSERT_OK(plan->Open());
    TupleBatch batch(8);
    bool has_more = false;
    ASSERT_OK(plan->NextBatch(&batch, &has_more));
    ASSERT_EQ(batch.size(), 8u);
    ASSERT_TRUE(has_more) << "partial drain expected input left over";
    drained[lane] = *db_->ctx()->counters() - before;
    ASSERT_OK(plan->Close());
    closed[lane] = *db_->ctx()->counters() - before;
    EXPECT_EQ(closed[lane].comparisons, drained[lane].comparisons)
        << "lane " << lane << ": Close flushed buffered Comp counts";
    EXPECT_EQ(closed[lane].hashes, drained[lane].hashes) << "lane " << lane;
    EXPECT_EQ(closed[lane].bit_ops, drained[lane].bit_ops)
        << "lane " << lane;
  }
  EXPECT_EQ(drained[0].comparisons, drained[1].comparisons)
      << "fused partial drain diverged from virtual";
  EXPECT_EQ(drained[0].hashes, drained[1].hashes);
  EXPECT_EQ(drained[0].bit_ops, drained[1].bit_ops);
}

TEST_F(FusedPipelineTest, ScanFilterProjectMatchesOperatorChain) {
  // The generic fused pipeline against Scan→Filter→Project: same rows, same
  // order, both protocol granularities.
  const int64_t bound = 10;
  auto chain = std::make_unique<ProjectOperator>(
      std::make_unique<FilterOperator>(
          std::make_unique<ScanOperator>(db_->ctx(), dividend_),
          [bound](const Tuple& t) { return t.value(1).int64() < bound; }),
      std::vector<size_t>{0});

  fused::FusedFilter filter;
  filter.enabled = true;
  filter.column = 1;
  filter.op = kernels::CmpOp::kLt;
  filter.constant = bound;
  auto fus = fused::MakeFusedScanFilterProject(db_->ctx(), dividend_, filter,
                                               {0});
  ASSERT_TRUE(fus->IsBatchNative());
  EXPECT_EQ(fus->output_schema().num_fields(), 1u);

  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> chain_rows,
                       CollectAll(chain.get()));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> fused_rows, CollectAll(fus.get()));
  EXPECT_EQ(fused_rows, chain_rows);

  // Tuple-at-a-time drain observes the same stream (CRTP TupleAdapter).
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> tuple_rows,
                       CollectAllTupleAtATime(fus.get()));
  EXPECT_EQ(tuple_rows, chain_rows);

  // Reopen contract: a second Open restarts from the first row.
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> again, CollectAll(fus.get()));
  EXPECT_EQ(again, chain_rows);
}

TEST_F(FusedPipelineTest, VectorSourcePipelines) {
  // In-memory sources: the fused division and the fused scan/filter/project
  // over a borrowed vector, against MemSourceOperator equivalents.
  const Schema dividend_schema = dividend_.schema;
  const std::vector<Tuple>& rows = workload_.dividend;

  DivisionOptions options;
  auto virt = std::make_unique<HashDivisionOperator>(
      db_->ctx(),
      std::make_unique<MemSourceOperator>(dividend_schema, rows),
      std::make_unique<ScanOperator>(db_->ctx(), divisor_),
      resolved_.match_attrs, resolved_.quotient_attrs, options);
  auto fus = fused::MakeFusedHashDivisionOverVector(
      db_->ctx(), &dividend_schema, &rows,
      std::make_unique<ScanOperator>(db_->ctx(), divisor_),
      resolved_.match_attrs, resolved_.quotient_attrs, options);
  ASSERT_OK_AND_ASSIGN(RunOutcome virt_out, Run(std::move(virt)));
  ASSERT_OK_AND_ASSIGN(RunOutcome fus_out, Run(std::move(fus)));
  ExpectIdentical(virt_out, fus_out, "vector-source division");
}

TEST_F(FusedPipelineTest, RejectsParallelEarlyOutputCombination) {
  DivisionOptions options;
  options.early_output = true;
  options.parallel_fragments = 4;
  auto plan = MakeFused(options);
  const Status status = plan->Open();
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

}  // namespace
}  // namespace reldiv
