#include "exec/scan.h"

namespace reldiv {

Status RelationSource::Open() {
  if (relation_.store == nullptr) {
    return Status::InvalidArgument("scan of relation without a store");
  }
  RELDIV_ASSIGN_OR_RETURN(scan_, relation_.store->OpenScan());
  return Status::OK();
}

Status RelationSource::NextBatchInto(TupleBatch* batch, bool* has_more) {
  if (refs_.size() < batch->capacity()) refs_.resize(batch->capacity());
  while (!batch->full()) {
    size_t count = 0;
    bool more = false;
    RELDIV_RETURN_NOT_OK(scan_->NextBatch(
        refs_.data(), batch->capacity() - batch->size(), &count, &more));
    for (size_t i = 0; i < count; ++i) {
      // Decode overwrites the whole slot, so the stale tuple need not be
      // cleared; its value buffers are reused in place.
      RELDIV_RETURN_NOT_OK(
          codec_.Decode(refs_[i].payload, batch->AddSlotForOverwrite()));
    }
    if (!more) {
      *has_more = false;
      return Status::OK();
    }
  }
  *has_more = true;
  return Status::OK();
}

Status RelationSource::Close() {
  if (scan_ != nullptr) {
    RELDIV_RETURN_NOT_OK(scan_->Close());
    scan_.reset();
  }
  return Status::OK();
}

}  // namespace reldiv
