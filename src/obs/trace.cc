#include "obs/trace.h"

#include <cstdio>

#include "common/metric_names.h"
#include "obs/telemetry.h"

namespace reldiv {

namespace {

/// Escapes a string for use inside a JSON string literal. Labels here are
/// operator names and categories — printable ASCII — but escaping keeps the
/// emitted file valid whatever a caller passes.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void TraceRecorder::Append(Event event) {
  MutexLock lock(mu_);
  if (events_.size() >= max_events_) {
    dropped_++;
    if (Telemetry::counting()) {
      static TelemetryCounter* drops = MetricRegistry::Global().FindOrCreateCounter(
          metric_names::kTraceSpansDropped);
      drops->Add(1);
    }
    return;
  }
  events_.push_back(std::move(event));
}

std::string TraceRecorder::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(e.name) + "\",\"cat\":\"" +
           JsonEscape(e.category) + "\",\"ph\":\"" + e.phase +
           "\",\"ts\":" + std::to_string(e.ts_us) +
           ",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    if (e.phase == 'X') out += ",\"dur\":" + std::to_string(e.dur_us);
    if (e.phase == 'i') out += ",\"s\":\"t\"";
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out += ",";
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\":" + std::to_string(value);
      }
      out += "}";
    }
    out += "}";
  }
  // Trailing metadata event: a truncated trace declares how many spans it
  // lost instead of silently looking complete.
  if (dropped_ > 0) {
    if (!first) out += ",";
    out += "{\"name\":\"trace_spans_dropped\",\"ph\":\"M\",\"pid\":1,"
           "\"tid\":0,\"args\":{\"dropped\":" +
           std::to_string(dropped_) + "}}";
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IOError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace reldiv
