
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bitmap.cc" "src/CMakeFiles/reldiv.dir/common/bitmap.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/bitmap.cc.o.d"
  "/root/repo/src/common/counters.cc" "src/CMakeFiles/reldiv.dir/common/counters.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/counters.cc.o.d"
  "/root/repo/src/common/hash.cc" "src/CMakeFiles/reldiv.dir/common/hash.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/hash.cc.o.d"
  "/root/repo/src/common/ordered_key.cc" "src/CMakeFiles/reldiv.dir/common/ordered_key.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/ordered_key.cc.o.d"
  "/root/repo/src/common/row_codec.cc" "src/CMakeFiles/reldiv.dir/common/row_codec.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/row_codec.cc.o.d"
  "/root/repo/src/common/schema.cc" "src/CMakeFiles/reldiv.dir/common/schema.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/schema.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/reldiv.dir/common/status.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/status.cc.o.d"
  "/root/repo/src/common/tuple.cc" "src/CMakeFiles/reldiv.dir/common/tuple.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/tuple.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/reldiv.dir/common/value.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/common/value.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/reldiv.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/io_cost.cc" "src/CMakeFiles/reldiv.dir/cost/io_cost.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/cost/io_cost.cc.o.d"
  "/root/repo/src/division/count_filter.cc" "src/CMakeFiles/reldiv.dir/division/count_filter.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/count_filter.cc.o.d"
  "/root/repo/src/division/division.cc" "src/CMakeFiles/reldiv.dir/division/division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/division.cc.o.d"
  "/root/repo/src/division/hash_agg_division.cc" "src/CMakeFiles/reldiv.dir/division/hash_agg_division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/hash_agg_division.cc.o.d"
  "/root/repo/src/division/hash_division.cc" "src/CMakeFiles/reldiv.dir/division/hash_division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/hash_division.cc.o.d"
  "/root/repo/src/division/naive_division.cc" "src/CMakeFiles/reldiv.dir/division/naive_division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/naive_division.cc.o.d"
  "/root/repo/src/division/partitioned_hash_division.cc" "src/CMakeFiles/reldiv.dir/division/partitioned_hash_division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/partitioned_hash_division.cc.o.d"
  "/root/repo/src/division/sort_agg_division.cc" "src/CMakeFiles/reldiv.dir/division/sort_agg_division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/division/sort_agg_division.cc.o.d"
  "/root/repo/src/exec/aggregate.cc" "src/CMakeFiles/reldiv.dir/exec/aggregate.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/aggregate.cc.o.d"
  "/root/repo/src/exec/database.cc" "src/CMakeFiles/reldiv.dir/exec/database.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/database.cc.o.d"
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/reldiv.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/filter.cc" "src/CMakeFiles/reldiv.dir/exec/filter.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/filter.cc.o.d"
  "/root/repo/src/exec/hash_aggregate.cc" "src/CMakeFiles/reldiv.dir/exec/hash_aggregate.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/hash_aggregate.cc.o.d"
  "/root/repo/src/exec/hash_join.cc" "src/CMakeFiles/reldiv.dir/exec/hash_join.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/hash_join.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/CMakeFiles/reldiv.dir/exec/hash_table.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/hash_table.cc.o.d"
  "/root/repo/src/exec/index_join.cc" "src/CMakeFiles/reldiv.dir/exec/index_join.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/index_join.cc.o.d"
  "/root/repo/src/exec/materialize.cc" "src/CMakeFiles/reldiv.dir/exec/materialize.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/materialize.cc.o.d"
  "/root/repo/src/exec/mem_source.cc" "src/CMakeFiles/reldiv.dir/exec/mem_source.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/mem_source.cc.o.d"
  "/root/repo/src/exec/merge_join.cc" "src/CMakeFiles/reldiv.dir/exec/merge_join.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/merge_join.cc.o.d"
  "/root/repo/src/exec/operator.cc" "src/CMakeFiles/reldiv.dir/exec/operator.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/operator.cc.o.d"
  "/root/repo/src/exec/project.cc" "src/CMakeFiles/reldiv.dir/exec/project.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/project.cc.o.d"
  "/root/repo/src/exec/scalar_aggregate.cc" "src/CMakeFiles/reldiv.dir/exec/scalar_aggregate.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/scalar_aggregate.cc.o.d"
  "/root/repo/src/exec/scan.cc" "src/CMakeFiles/reldiv.dir/exec/scan.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/scan.cc.o.d"
  "/root/repo/src/exec/sort.cc" "src/CMakeFiles/reldiv.dir/exec/sort.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/sort.cc.o.d"
  "/root/repo/src/exec/sort_aggregate.cc" "src/CMakeFiles/reldiv.dir/exec/sort_aggregate.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/exec/sort_aggregate.cc.o.d"
  "/root/repo/src/parallel/bit_vector_filter.cc" "src/CMakeFiles/reldiv.dir/parallel/bit_vector_filter.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/parallel/bit_vector_filter.cc.o.d"
  "/root/repo/src/parallel/network.cc" "src/CMakeFiles/reldiv.dir/parallel/network.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/parallel/network.cc.o.d"
  "/root/repo/src/parallel/node.cc" "src/CMakeFiles/reldiv.dir/parallel/node.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/parallel/node.cc.o.d"
  "/root/repo/src/parallel/parallel_hash_division.cc" "src/CMakeFiles/reldiv.dir/parallel/parallel_hash_division.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/parallel/parallel_hash_division.cc.o.d"
  "/root/repo/src/parallel/partitioner.cc" "src/CMakeFiles/reldiv.dir/parallel/partitioner.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/parallel/partitioner.cc.o.d"
  "/root/repo/src/planner/logical_plan.cc" "src/CMakeFiles/reldiv.dir/planner/logical_plan.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/planner/logical_plan.cc.o.d"
  "/root/repo/src/planner/physical_planner.cc" "src/CMakeFiles/reldiv.dir/planner/physical_planner.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/planner/physical_planner.cc.o.d"
  "/root/repo/src/planner/rewrite.cc" "src/CMakeFiles/reldiv.dir/planner/rewrite.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/planner/rewrite.cc.o.d"
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/reldiv.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_manager.cc" "src/CMakeFiles/reldiv.dir/storage/buffer_manager.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/buffer_manager.cc.o.d"
  "/root/repo/src/storage/disk.cc" "src/CMakeFiles/reldiv.dir/storage/disk.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/disk.cc.o.d"
  "/root/repo/src/storage/extent_file.cc" "src/CMakeFiles/reldiv.dir/storage/extent_file.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/extent_file.cc.o.d"
  "/root/repo/src/storage/memory_manager.cc" "src/CMakeFiles/reldiv.dir/storage/memory_manager.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/memory_manager.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/CMakeFiles/reldiv.dir/storage/page.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/page.cc.o.d"
  "/root/repo/src/storage/record_file.cc" "src/CMakeFiles/reldiv.dir/storage/record_file.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/record_file.cc.o.d"
  "/root/repo/src/storage/virtual_device.cc" "src/CMakeFiles/reldiv.dir/storage/virtual_device.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/storage/virtual_device.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/reldiv.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/university.cc" "src/CMakeFiles/reldiv.dir/workload/university.cc.o" "gcc" "src/CMakeFiles/reldiv.dir/workload/university.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
