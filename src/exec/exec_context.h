#ifndef RELDIV_EXEC_EXEC_CONTEXT_H_
#define RELDIV_EXEC_EXEC_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <memory>

#include "common/config.h"
#include "common/counters.h"
#include "common/status.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/memory_manager.h"

namespace reldiv {

class QueryProfile;
class TraceRecorder;

/// Shared services handed to every operator in a query evaluation plan:
/// the simulated disk, the buffer manager, the main memory pool from which
/// hash tables and sort space are drawn, and deterministic CPU counters.
/// All functions on data records (comparison, hashing) are bound at plan
/// construction time, mirroring the paper's compiled function pointers.
class ExecContext {
 public:
  // Constructor and destructor are out-of-line: the context owns the
  // forward-declared QueryProfile via unique_ptr.
  ExecContext(SimDisk* disk, BufferManager* buffer_manager, MemoryPool* pool,
              CpuCounters* counters);
  ~ExecContext();

  SimDisk* disk() const { return disk_; }
  BufferManager* buffer_manager() const { return buffer_manager_; }
  MemoryPool* pool() const { return pool_; }
  CpuCounters* counters() const { return counters_; }

  /// Sort space (run-formation memory) available to each sort operator,
  /// 100 KB of the 256 KB buffer by default (§5.1).
  size_t sort_space_bytes() const { return sort_space_bytes_; }
  void set_sort_space_bytes(size_t bytes) { sort_space_bytes_ = bytes; }

  /// Memory ceiling for a single operator's hash tables (divisor table plus
  /// quotient table in hash-division). 0 means "whatever the pool allows".
  size_t hash_memory_bytes() const { return hash_memory_bytes_; }
  void set_hash_memory_bytes(size_t bytes) { hash_memory_bytes_ = bytes; }

  /// Tuple-slot count of the TupleBatches used by this plan's internal
  /// drains (hash-division input consumption, spools, partition passes).
  /// 1 degenerates every pipeline to tuple-at-a-time; the default is
  /// kDefaultBatchCapacity.
  size_t batch_capacity() const { return batch_capacity_; }
  void set_batch_capacity(size_t capacity) {
    batch_capacity_ = capacity == 0 ? 1 : capacity;
  }

  /// Degree of intra-node parallelism available to dop-aware operators
  /// (parallel sort run formation, concurrent division clusters, exchange
  /// fragments). Defaults to TaskScheduler::DefaultDop(), i.e. the
  /// RELDIV_THREADS environment variable or 1. Operators must keep quotients
  /// and Table 1 counter totals bit-identical across dop values — only
  /// thread assignment may vary (see exec/scheduler.h).
  size_t dop() const { return dop_; }
  void set_dop(size_t dop) { dop_ = dop == 0 ? 1 : dop; }

  /// Debug switch: when on, plan builders wrap the operators they hand out
  /// in a ContractCheckOperator (exec/contract_check.h) that validates the
  /// open-next-close protocol at runtime and fails the query with an
  /// Internal status on the first violation. Off by default — the wrapper
  /// costs a schema walk per emitted tuple.
  bool contract_checks() const { return contract_checks_; }
  void set_contract_checks(bool enabled) { contract_checks_ = enabled; }

  /// Observability switch: when on, plan builders wrap the operators they
  /// construct in a ProfiledOperator (obs/profiled_operator.h) that records
  /// a per-operator MetricsNode tree — wall time, call counts, tuples and
  /// batches, CpuCounters and I/O deltas, algorithm gauges — into profile().
  /// Off by default: disabled plans contain no wrapper and pay nothing.
  bool profiling() const { return profiling_; }
  void set_profiling(bool enabled);

  /// The metrics collected by profiled plans on this context; non-null once
  /// set_profiling(true) has been called (the trees survive turning
  /// profiling back off, until the next set_profiling(true) clears them).
  QueryProfile* profile() const { return profile_.get(); }

  /// Attaches a chrome://tracing span recorder (obs/trace.h) to this context
  /// AND to its disk and buffer manager, so operator lifecycle spans, page
  /// traffic, and disk transfers land on one timeline. nullptr detaches.
  /// Not owned; the recorder must outlive the attachment.
  void set_trace(TraceRecorder* trace);
  TraceRecorder* trace() const { return trace_; }

  /// Cooperative cancellation (DivisionService): points this context at an
  /// externally owned flag (the query ticket's; must outlive the plan).
  /// Long-running drive loops poll CheckCancelled() at batch boundaries, so
  /// a cancelled query unwinds through the normal error path — Close runs,
  /// arenas Reset, grants release — with a clean kCancelled status.
  /// nullptr (the default) disables the checks entirely.
  void set_cancellation_flag(const std::atomic<bool>* flag) {
    cancel_flag_ = flag;
  }
  bool cancelled() const {
    return cancel_flag_ != nullptr &&
           cancel_flag_->load(std::memory_order_relaxed);
  }
  Status CheckCancelled() const {
    if (cancelled()) return Status::Cancelled("query cancelled");
    return Status::OK();
  }

  // Cost-unit bumpers (Table 1: Comp / Hash / Move / Bit).
  void CountComparisons(uint64_t n) const { counters_->comparisons += n; }
  void CountHashes(uint64_t n) const { counters_->hashes += n; }
  void CountBitOps(uint64_t n) const { counters_->bit_ops += n; }

  /// Accumulates memory-copy volume; one Move unit per page of bytes.
  void CountMoveBytes(uint64_t bytes) const {
    move_accumulator_ += bytes;
    counters_->moves += move_accumulator_ / kPageSize;
    move_accumulator_ %= kPageSize;
  }

  /// Drops the sub-page Move remainder. Measurement harnesses call this
  /// before a counted run so two identical runs report identical Move
  /// deltas regardless of what executed earlier on this context.
  void ResetMoveAccumulator() const { move_accumulator_ = 0; }

  /// The sub-page Move remainder currently carried. Parallel sections run
  /// each fragment on its own context and fold the fragments' remainders
  /// back into the parent IN FRAGMENT ORDER (FragmentContexts::MergeInto),
  /// which reproduces the serial cumulative fold exactly.
  uint64_t move_remainder_bytes() const { return move_accumulator_; }

 private:
  SimDisk* disk_;
  BufferManager* buffer_manager_;
  MemoryPool* pool_;
  CpuCounters* counters_;
  size_t sort_space_bytes_ = kDefaultSortSpaceBytes;
  size_t hash_memory_bytes_ = 0;
  size_t batch_capacity_ = kDefaultBatchCapacity;
  size_t dop_;  // initialized in the constructor from RELDIV_THREADS
  const std::atomic<bool>* cancel_flag_ = nullptr;
  bool contract_checks_ = false;
  bool profiling_ = false;
  std::unique_ptr<QueryProfile> profile_;
  TraceRecorder* trace_ = nullptr;
  mutable uint64_t move_accumulator_ = 0;
};

}  // namespace reldiv

#endif  // RELDIV_EXEC_EXEC_CONTEXT_H_
