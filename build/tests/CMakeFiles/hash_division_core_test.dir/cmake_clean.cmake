file(REMOVE_RECURSE
  "CMakeFiles/hash_division_core_test.dir/hash_division_core_test.cc.o"
  "CMakeFiles/hash_division_core_test.dir/hash_division_core_test.cc.o.d"
  "hash_division_core_test"
  "hash_division_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_division_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
