#ifndef RELDIV_TESTS_TEST_UTIL_H_
#define RELDIV_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <set>
#include <vector>

#include "common/tuple.h"
#include "exec/database.h"
#include "exec/relation.h"
#include "gtest/gtest.h"

namespace reldiv {

#define ASSERT_OK(expr)                                  \
  do {                                                   \
    const ::reldiv::Status _st = (expr);                 \
    ASSERT_TRUE(_st.ok()) << _st.ToString();             \
  } while (false)

#define EXPECT_OK(expr)                                  \
  do {                                                   \
    const ::reldiv::Status _st = (expr);                 \
    EXPECT_TRUE(_st.ok()) << _st.ToString();             \
  } while (false)

#define ASSERT_OK_AND_ASSIGN(lhs, rexpr)                 \
  ASSERT_OK_AND_ASSIGN_IMPL(                             \
      RELDIV_CONCAT_(_assert_result_, __LINE__), lhs, rexpr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)       \
  auto tmp = (rexpr);                                    \
  ASSERT_TRUE(tmp.ok()) << tmp.status().ToString();      \
  lhs = tmp.MoveValue();

/// Sorts a tuple batch for order-insensitive comparison.
inline std::vector<Tuple> Sorted(std::vector<Tuple> tuples) {
  std::sort(tuples.begin(), tuples.end());
  return tuples;
}

/// Brute-force relational division over in-memory tuples: the ground truth
/// every algorithm is property-tested against. A quotient value qualifies
/// iff the divisor is non-empty and, for every divisor tuple, the dividend
/// contains (q, s).
std::vector<Tuple> ReferenceDivision(const std::vector<Tuple>& dividend,
                                     const std::vector<Tuple>& divisor,
                                     const std::vector<size_t>& match_attrs,
                                     const std::vector<size_t>& quotient_attrs);

/// Convenience constructors.
inline Tuple T(int64_t a) { return Tuple{Value::Int64(a)}; }
inline Tuple T(int64_t a, int64_t b) {
  return Tuple{Value::Int64(a), Value::Int64(b)};
}
inline Tuple T(int64_t a, int64_t b, int64_t c) {
  return Tuple{Value::Int64(a), Value::Int64(b), Value::Int64(c)};
}

}  // namespace reldiv

#endif  // RELDIV_TESTS_TEST_UTIL_H_
