// Fused-pipeline ablation: the same scan → filter → hash-division probe
// pipeline executed three ways.
//
//   virtual-tuple   the classic Volcano chain (ScanOperator → FilterOperator
//                   → HashDivisionOperator) drained through Next() — one
//                   virtual-call round trip through every operator per tuple,
//                   the paper's §5.1 execution model.
//   virtual-batch   the identical chain drained through NextBatch() at the
//                   default batch capacity — dispatch amortized per batch,
//                   but each stage still materializes its output for the
//                   next operator's input and the filter interprets its
//                   predicate one tuple at a time.
//   fused           fused::FusedHashDivision — scan decode, the compare-
//                   kernel filter, and the staged divisor/quotient probes in
//                   one NextBatch body (src/exec/fused/), kernels selected
//                   by kernels::ActiveLevel().
//
// The three lanes must produce the identical quotient and identical Table 1
// operation counts (fusion may never change what is counted, only how fast
// it runs); the bench fails otherwise. The headline metric
// `fused_vs_virtual_speedup` is probe-loop throughput of the fused lane over
// the virtual-dispatch (tuple) lane; `fused_vs_virtual_batch_speedup`
// isolates what fusion adds beyond batching alone.
//
// A second section times the division kernels in both variants directly —
// scalar reference vs SIMD — on flat arrays, giving per-kernel
// `simd_speedup` ratios independent of the pipeline around them.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "division/hash_division.h"
#include "exec/filter.h"
#include "exec/fused/fused_division.h"
#include "exec/kernels/kernels.h"
#include "exec/scan.h"

namespace reldiv {
namespace {

struct Measurement {
  std::string label;
  double wall_ms = 1e300;  // best across repetitions
  std::vector<double> wall_samples_ms;
  double cpu_ms = 0;
  CpuCounters counters;
  std::vector<Tuple> quotient;
};

double Now() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status RunPipelines(bench::BenchReporter* report) {
  const int kRepetitions = bench::SmokeMode() ? 2 : 5;
  // Scan-heavy regime (the one fusion targets): five sixths of the dividend
  // fails the filter, so most tuples pay only the iteration protocol; the
  // surviving sixth pays the division probes.
  WorkloadSpec spec;
  spec.divisor_cardinality = 50;
  spec.quotient_candidates = bench::SmokeMode() ? 80 : 2000;
  spec.candidate_completeness = 1.0;
  spec.nonmatching_tuples = bench::SmokeMode() ? 20000 : 500000;
  spec.seed = 99;
  GeneratedWorkload workload = GenerateWorkload(spec);
  const uint64_t dividend_tuples = workload.dividend.size();

  DatabaseOptions db_options;
  db_options.pool_bytes = 0;  // unbounded pool: keep the pipeline CPU-bound
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(db_options));
  Relation dividend, divisor;
  RELDIV_RETURN_NOT_OK(
      LoadWorkload(db.get(), workload, "fa", &dividend, &divisor));
  const int64_t divisor_count =
      static_cast<int64_t>(spec.divisor_cardinality);

  DivisionQuery query{dividend, divisor, {"divisor_id"}};
  RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved, ResolveDivision(query));
  DivisionOptions options;
  options.expected_divisor_cardinality = spec.divisor_cardinality;
  options.expected_quotient_cardinality = spec.quotient_candidates;

  // Dividend is (quotient_id, divisor_id); valid divisor values are
  // [0, |S|), foreign ones lie above — both filters encode the same
  // predicate `divisor_id < |S|`.
  auto make_virtual = [&]() -> std::unique_ptr<Operator> {
    auto scan = std::make_unique<ScanOperator>(db->ctx(), dividend);
    auto filter = std::make_unique<FilterOperator>(
        std::move(scan), [divisor_count](const Tuple& t) {
          return t.value(1).int64() < divisor_count;
        });
    return std::make_unique<HashDivisionOperator>(
        db->ctx(), std::move(filter),
        std::make_unique<ScanOperator>(db->ctx(), divisor),
        resolved.match_attrs, resolved.quotient_attrs, options);
  };
  auto make_fused = [&]() -> std::unique_ptr<Operator> {
    fused::FusedFilter filter;
    filter.enabled = true;
    filter.column = 1;
    filter.op = kernels::CmpOp::kLt;
    filter.constant = divisor_count;
    return fused::MakeFusedHashDivision(
        db->ctx(), resolved,
        std::make_unique<ScanOperator>(db->ctx(), divisor), options, filter);
  };

  enum Lane { kVirtualTuple, kVirtualBatch, kFused };
  const struct {
    Lane lane;
    const char* label;
  } kLanes[] = {{kVirtualTuple, "virtual-tuple"},
                {kVirtualBatch, "virtual-batch"},
                {kFused, "fused"}};

  std::printf("=== Fused-pipeline ablation: scan -> filter(17%%) -> "
              "hash-division ===\n\n");
  std::printf("dividend %llu tuples, divisor %llu, quotient %llu; kernels: "
              "%s; best of %d runs per lane\n\n",
              static_cast<unsigned long long>(dividend_tuples),
              static_cast<unsigned long long>(spec.divisor_cardinality),
              static_cast<unsigned long long>(spec.quotient_candidates),
              kernels::LevelName(kernels::ActiveLevel()), kRepetitions);

  std::vector<Measurement> measurements;
  for (const auto& lane : kLanes) {
    Measurement m;
    m.label = lane.label;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      RELDIV_RETURN_NOT_OK(db->buffer_manager()->FlushAll());
      RELDIV_RETURN_NOT_OK(db->buffer_manager()->DropAll());
      db->ctx()->ResetMoveAccumulator();
      const CpuCounters before = *db->counters();
      std::unique_ptr<Operator> plan =
          lane.lane == kFused ? make_fused() : make_virtual();
      const double t0 = Now();
      std::vector<Tuple> quotient;
      if (lane.lane == kVirtualTuple) {
        db->ctx()->set_batch_capacity(1);
        RELDIV_ASSIGN_OR_RETURN(quotient,
                                CollectAllTupleAtATime(plan.get()));
        db->ctx()->set_batch_capacity(kDefaultBatchCapacity);
      } else {
        RELDIV_ASSIGN_OR_RETURN(quotient, CollectAll(plan.get()));
      }
      const double wall_ms = Now() - t0;
      CpuCounters delta = *db->counters();
      delta.comparisons -= before.comparisons;
      delta.hashes -= before.hashes;
      delta.moves -= before.moves;
      delta.bit_ops -= before.bit_ops;
      if (rep == 0) {
        m.counters = delta;
        m.cpu_ms = CpuCostMs(delta);
        std::sort(quotient.begin(), quotient.end());
        m.quotient = std::move(quotient);
      } else if (delta.comparisons != m.counters.comparisons ||
                 delta.hashes != m.counters.hashes ||
                 delta.moves != m.counters.moves ||
                 delta.bit_ops != m.counters.bit_ops) {
        return Status::Internal("cost counters drifted between repetitions");
      }
      m.wall_ms = std::min(m.wall_ms, wall_ms);
      m.wall_samples_ms.push_back(wall_ms);
    }
    measurements.push_back(std::move(m));
  }

  // The ablation's contract: identical quotient, identical Table 1 totals,
  // in every lane.
  const Measurement& base = measurements[0];
  for (const Measurement& m : measurements) {
    if (m.quotient != base.quotient) {
      return Status::Internal("quotient differs between " + base.label +
                              " and " + m.label);
    }
    if (m.counters.comparisons != base.counters.comparisons ||
        m.counters.hashes != base.counters.hashes ||
        m.counters.moves != base.counters.moves ||
        m.counters.bit_ops != base.counters.bit_ops) {
      return Status::Internal("Table 1 counters differ between " +
                              base.label + " and " + m.label);
    }
  }

  std::printf("  %14s | %10s %12s %14s %10s\n", "lane", "wall ms",
              "cpu-model ms", "tuples/sec", "speedup");
  bench::Rule(70);
  for (const Measurement& m : measurements) {
    std::printf("  %14s | %10.2f %12.2f %14.0f %9.2fx\n", m.label.c_str(),
                m.wall_ms, m.cpu_ms,
                static_cast<double>(dividend_tuples) / (m.wall_ms / 1000.0),
                base.wall_ms / m.wall_ms);
  }
  std::printf("\nquotient and Table 1 counters identical across all lanes "
              "(Comp %llu, Hash %llu, Move %llu, Bit %llu)\n\n",
              static_cast<unsigned long long>(base.counters.comparisons),
              static_cast<unsigned long long>(base.counters.hashes),
              static_cast<unsigned long long>(base.counters.moves),
              static_cast<unsigned long long>(base.counters.bit_ops));

  const double fused_wall = measurements[kFused].wall_ms;
  const double vs_tuple = measurements[kVirtualTuple].wall_ms / fused_wall;
  const double vs_batch = measurements[kVirtualBatch].wall_ms / fused_wall;
  for (const Measurement& m : measurements) {
    bench::BenchRow* row = report->AddRow(m.label);
    for (double sample : m.wall_samples_ms) row->AddWallMs(sample);
    row->counters = m.counters;
    row->AddValue("best_wall_ms", m.wall_ms);
    row->AddValue("cpu_ms", m.cpu_ms);
    row->AddValue("tuples_per_sec", static_cast<double>(dividend_tuples) /
                                        (m.wall_ms / 1000.0));
    row->AddValue("quotient_tuples", static_cast<double>(m.quotient.size()));
    if (&m == &measurements[kFused]) {
      row->AddValue("fused_vs_virtual_speedup", vs_tuple);
      row->AddValue("fused_vs_virtual_batch_speedup", vs_batch);
    }
  }
  report->AddParam("dividend_tuples", static_cast<double>(dividend_tuples));
  report->AddParam("kernel_level",
                   std::string(kernels::LevelName(kernels::ActiveLevel())));
  std::printf("fused vs virtual-dispatch (tuple) speedup: %.2fx\n"
              "fused vs virtual-batch speedup:            %.2fx\n\n",
              vs_tuple, vs_batch);
  return Status::OK();
}

// --- SIMD vs scalar kernel micro-section -----------------------------------

/// Best-of-reps milliseconds for `iters` runs of `fn`.
template <typename Fn>
double TimeMs(int reps, int iters, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = Now();
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, Now() - t0);
  }
  return best;
}

void RunKernelMicro(bench::BenchReporter* report) {
  const size_t n = bench::SmokeMode() ? 1 << 12 : 1 << 20;
  const int reps = bench::SmokeMode() ? 2 : 5;
  const int iters = bench::SmokeMode() ? 2 : 8;
  Rng rng(3);
  std::vector<int64_t> keys(n);
  for (int64_t& k : keys) k = static_cast<int64_t>(rng.Next());
  std::vector<uint64_t> hashes(n);
  std::vector<uint64_t> words(n / 64, ~uint64_t{0});
  std::vector<uint8_t> mask(n);
  volatile uint64_t sink = 0;  // defeats dead-code elimination

  struct Kernel {
    const char* name;
    double scalar_ms;
    double simd_ms;
  };
  std::vector<Kernel> kernels_run;

  kernels_run.push_back(
      {"hash_int64",
       TimeMs(reps, iters,
              [&] {
                kernels::HashInt64KeysScalar(keys.data(), n, hashes.data());
                sink = sink + hashes[0];
              }),
       !kernels::SimdAvailable()
           ? 0
           : TimeMs(reps, iters, [&] {
               kernels::HashInt64KeysSimd(keys.data(), n, hashes.data());
               sink = sink + hashes[0];
             })});
  kernels_run.push_back(
      {"all_words_set",
       TimeMs(reps, iters,
              [&] {
                sink = sink + (kernels::AllWordsSetScalar(words.data(), n)
                                   ? 1
                                   : 0);
              }),
       !kernels::SimdAvailable()
           ? 0
           : TimeMs(reps, iters, [&] {
               sink = sink + (kernels::AllWordsSetSimd(words.data(), n)
                                  ? 1
                                  : 0);
             })});
  kernels_run.push_back(
      {"popcount_words",
       TimeMs(reps, iters,
              [&] {
                sink = sink + kernels::PopcountWordsScalar(words.data(),
                                                     words.size());
              }),
       !kernels::SimdAvailable()
           ? 0
           : TimeMs(reps, iters, [&] {
               sink = sink +
                   kernels::PopcountWordsSimd(words.data(), words.size());
             })});
  kernels_run.push_back(
      {"compare_int64",
       TimeMs(reps, iters,
              [&] {
                sink = sink + kernels::CompareInt64Scalar(
                    keys.data(), n, kernels::CmpOp::kLt, 0, mask.data());
              }),
       !kernels::SimdAvailable()
           ? 0
           : TimeMs(reps, iters, [&] {
               sink = sink + kernels::CompareInt64Simd(
                   keys.data(), n, kernels::CmpOp::kLt, 0, mask.data());
             })});
  (void)sink;

  std::printf("=== Kernel micro: scalar vs SIMD, %zu elements ===\n\n", n);
  std::printf("  %16s | %11s %11s %10s\n", "kernel", "scalar ms", "simd ms",
              "speedup");
  bench::Rule(56);
  for (const Kernel& k : kernels_run) {
    bench::BenchRow* row =
        report->AddRow(std::string("kernel ") + k.name);
    row->AddWallMs(k.scalar_ms);
    row->AddValue("scalar_ms", k.scalar_ms);
    row->AddValue("elements", static_cast<double>(n));
    if (k.simd_ms > 0) {
      row->AddValue("simd_ms", k.simd_ms);
      row->AddValue("simd_speedup", k.scalar_ms / k.simd_ms);
      std::printf("  %16s | %11.3f %11.3f %9.2fx\n", k.name, k.scalar_ms,
                  k.simd_ms, k.scalar_ms / k.simd_ms);
    } else {
      std::printf("  %16s | %11.3f %11s %10s\n", k.name, k.scalar_ms, "n/a",
                  "n/a");
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace reldiv

int main() {
  reldiv::bench::BenchReporter report("fused_ablation");
  report.AddParam("smoke", reldiv::bench::SmokeMode() ? 1 : 0);
  report.AddParam("simd_available",
                  reldiv::kernels::SimdAvailable() ? 1 : 0);
  const reldiv::Status status = reldiv::RunPipelines(&report);
  if (!status.ok()) {
    std::fprintf(stderr, "fused_ablation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  reldiv::RunKernelMicro(&report);
  return report.WriteFile() ? 0 : 1;
}
