#ifndef RELDIV_STORAGE_BUFFER_MANAGER_H_
#define RELDIV_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/config.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "storage/disk.h"
#include "storage/memory_manager.h"

namespace reldiv {

class TraceRecorder;

/// Buffer-pool statistics (deterministic; asserted in tests).
struct BufferStats {
  uint64_t fixes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  std::string ToString() const;
};

/// Page buffer manager in the WiSS style described in §5.1: callers fix a
/// page and receive the frame address (records are used in place, no
/// copying); an unfix call indicates whether the page can be replaced
/// immediately or should go to the LRU list. The pool grows dynamically
/// until the shared MemoryPool is exhausted and shrinks as frames are
/// released.
///
/// Thread-safe: a recursive mutex serializes all public entry points, so
/// concurrent morsels fixing the same page observe exactly-once read-in
/// (one miss, then hits) and monotone, non-double-counted BufferStats. The
/// mutex must be recursive because a miss re-enters the manager on the same
/// thread: Fix → MemoryPool::Reserve → reclaimer → TryShedFrame. Lock
/// ordering is buffer manager → pool / disk, never the reverse (the pool
/// invokes its reclaimer unlocked — see storage/memory_manager.h).
class BufferManager {
 public:
  /// `pool` may be nullptr for an unbounded pool.
  BufferManager(SimDisk* disk, MemoryPool* pool);
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Fixes the disk page `page_no` (global page index; one page spans
  /// kSectorsPerPage sectors) and returns the frame address. With
  /// `create` the page is not read from disk (freshly allocated page).
  /// When every frame is fixed and the pool cannot grow: with the pool's
  /// wait_timeout at zero (the default), ResourceExhausted immediately;
  /// otherwise the call parks on the pool's release condvar (with this
  /// manager's mutex dropped, so concurrent Unfix calls can free budget)
  /// and retries until the deadline, then surfaces ResourceExhausted.
  Result<char*> Fix(uint64_t page_no, bool create);

  /// Releases one pin. `dirty` schedules write-back; `replace_immediately`
  /// is the §5.1 hint that the page will not be re-referenced: the frame is
  /// written back at once and its memory returned to the pool.
  Status Unfix(uint64_t page_no, bool dirty, bool replace_immediately = false);

  /// Writes back all dirty frames (pages stay cached).
  Status FlushAll();

  /// Drops every unfixed frame (after write-back), returning memory to the
  /// pool. Internal error if any page is still fixed.
  Status DropAll();

  /// Pin count of `page_no` (0 if not resident) — test hook.
  int PinCount(uint64_t page_no) const;

  /// Releases one unfixed frame back to the pool (LRU victim, written back
  /// if dirty). Returns false when every frame is fixed. This is the
  /// MemoryPool reclaimer: the buffer pool shrinks when other components —
  /// hash tables, sort space — need the memory (§5.1).
  bool TryShedFrame();

  size_t num_frames() const {
    RecursiveMutexLock lock(mu_);
    return frames_.size();
  }
  /// Snapshot of the statistics (by value: a reference would tear under
  /// concurrent fixes).
  BufferStats stats() const {
    RecursiveMutexLock lock(mu_);
    return stats_;
  }
  void ResetStats() {
    RecursiveMutexLock lock(mu_);
    stats_ = BufferStats{};
  }

  /// Attaches a span recorder (obs/trace.h): page reads from disk, dirty
  /// write-backs, and evictions then emit instant trace events carrying the
  /// page number. nullptr detaches.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    uint64_t page_no = 0;
    int pin_count = 0;
    bool dirty = false;
    bool in_lru = false;
    std::list<uint64_t>::iterator lru_pos;
  };

  /// One locked fix attempt. Counts statistics and fires the failpoint only
  /// when `first_attempt` (Fix classifies hit/miss once per call, however
  /// many waits it takes). Sets `*would_block` instead of failing when the
  /// pool is exhausted with nothing evictable, so Fix can wait unlocked.
  Result<char*> FixAttempt(uint64_t page_no, bool create, bool first_attempt,
                           bool* would_block);

  Status WriteBack(Frame* frame) REQUIRES(mu_);
  Status ReadIn(Frame* frame) REQUIRES(mu_);
  /// Evicts one unfixed frame (LRU head); false if none exists.
  Result<bool> EvictOne() REQUIRES(mu_);
  Status ReleaseFrame(uint64_t page_no) REQUIRES(mu_);

  /// Serializes all public entry points; recursive for the Fix → Reserve →
  /// reclaimer → TryShedFrame re-entry on one thread (class comment).
  mutable RecursiveMutex mu_;
  SimDisk* disk_;
  MemoryPool* pool_;
  TraceRecorder* trace_ = nullptr;  ///< attached during setup (see set_trace)
  std::unordered_map<uint64_t, Frame> frames_ GUARDED_BY(mu_);
  /// Unfixed pages, least recent first.
  std::list<uint64_t> lru_ GUARDED_BY(mu_);
  BufferStats stats_ GUARDED_BY(mu_);
};

/// RAII pin over a buffer page: unfixes on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferManager* bm, uint64_t page_no, char* frame, bool dirty)
      : bm_(bm), page_no_(page_no), frame_(frame), dirty_(dirty) {}
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    if (this != &o) {
      Release();
      bm_ = o.bm_;
      page_no_ = o.page_no_;
      frame_ = o.frame_;
      dirty_ = o.dirty_;
      o.bm_ = nullptr;
      o.frame_ = nullptr;
    }
    return *this;
  }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  char* frame() const { return frame_; }
  bool valid() const { return frame_ != nullptr; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (bm_ != nullptr && frame_ != nullptr) {
      // Best-effort in a destructor: an Unfix failure here means the page
      // was already released or the guard was misused, and a destructor has
      // no error channel — the write-back path re-reports on FlushAll.
      (void)bm_->Unfix(page_no_, dirty_);
    }
    bm_ = nullptr;
    frame_ = nullptr;
  }

 private:
  BufferManager* bm_ = nullptr;
  uint64_t page_no_ = 0;
  char* frame_ = nullptr;
  bool dirty_ = false;
};

}  // namespace reldiv

#endif  // RELDIV_STORAGE_BUFFER_MANAGER_H_
