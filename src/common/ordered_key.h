#ifndef RELDIV_COMMON_ORDERED_KEY_H_
#define RELDIV_COMMON_ORDERED_KEY_H_

#include <string>

#include "common/result.h"
#include "common/tuple.h"

namespace reldiv {

/// Order-preserving key encoding: the lexicographic BYTE order of two
/// encoded tuples equals their value order (Tuple::Compare). Used for
/// B+-tree index keys, whose nodes compare keys with memcmp.
///
/// Encoding per value:
///  * int64  — sign bit flipped, big-endian (8 bytes);
///  * double — IEEE-754 total-order trick: positive values get the sign bit
///    set, negatives are bitwise inverted; big-endian;
///  * string — bytes with 0x00 escaped as {0x00, 0xFF}, terminated by
///    {0x00, 0x00}, so that prefixes sort first and embedded zeros survive.
/// A one-byte type tag precedes each value (types order by tag, matching
/// Value::Compare).
Status EncodeOrderedKey(const Tuple& tuple, std::string* out);

/// Convenience wrapper returning a fresh buffer.
Result<std::string> OrderedKeyToString(const Tuple& tuple);

}  // namespace reldiv

#endif  // RELDIV_COMMON_ORDERED_KEY_H_
