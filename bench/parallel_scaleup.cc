// Experiment E4 (§6): hash-division on a simulated shared-nothing machine.
// Sweeps the number of nodes for both partitioning strategies and reports
// the slowest node's local division time (the parallel section's critical
// path), interconnect traffic, and the effect of Babb bit-vector filtering
// on the number of dividend tuples shipped. §6 is qualitative in the paper;
// this bench quantifies its claims on this implementation.

#include <cstdio>

#include "bench/bench_util.h"
#include "parallel/parallel_hash_division.h"

namespace reldiv {
namespace {

Status Run(bench::BenchReporter* report) {
  std::printf("=== Experiment E4: multi-processor hash-division (§6) "
              "===\n\n");
  // Smoke mode: ~20x smaller dividend, same sweep structure.
  const uint64_t shrink = bench::SmokeMode() ? 20 : 1;
  WorkloadSpec spec;
  spec.divisor_cardinality = 100;
  spec.quotient_candidates = 5000 / shrink;
  spec.candidate_completeness = 0.6;
  spec.nonmatching_tuples = 200000 / shrink;  // §6: filtering pays off
  spec.seed = 66;
  GeneratedWorkload workload = GenerateWorkload(spec);
  std::printf("Workload: |S|=%llu, |R|=%zu tuples (%llu non-matching), "
              "|Q|=%zu\n\n",
              static_cast<unsigned long long>(spec.divisor_cardinality),
              workload.dividend.size(),
              static_cast<unsigned long long>(spec.nonmatching_tuples),
              workload.expected_quotient.size());

  std::printf("%-10s %5s %7s | %12s %10s %12s %10s %9s\n", "strategy",
              "nodes", "filter", "node cpu ms", "speedup", "net bytes",
              "net msgs", "filtered");
  bench::Rule(92);

  double single_node_ms = 0;
  for (PartitionStrategy strategy :
       {PartitionStrategy::kQuotient, PartitionStrategy::kDivisor}) {
    for (size_t nodes : {1, 2, 4, 8}) {
      for (bool filter : {false, true}) {
        ParallelDivisionOptions options;
        options.num_nodes = nodes;
        options.strategy = strategy;
        options.use_bit_vector_filter = filter;
        options.bit_vector_bits = 64 * 1024;
        ParallelHashDivisionEngine engine(options);
        RELDIV_ASSIGN_OR_RETURN(
            ParallelDivisionResult result,
            engine.Execute(workload.dividend_schema, workload.divisor_schema,
                           workload.dividend, workload.divisor, {1}));
        if (result.quotient.size() != workload.expected_quotient.size()) {
          return Status::Internal("parallel division produced a wrong-sized "
                                  "quotient");
        }
        const char* name =
            strategy == PartitionStrategy::kQuotient ? "quotient" : "divisor";
        if (strategy == PartitionStrategy::kQuotient && nodes == 1 &&
            !filter) {
          single_node_ms = result.max_node_cpu_ms;
        }
        std::printf("%-10s %5zu %7s | %12.1f %9.2fx %12llu %10llu %9llu\n",
                    name, nodes, filter ? "on" : "off",
                    result.max_node_cpu_ms,
                    single_node_ms > 0 ? single_node_ms /
                                             result.max_node_cpu_ms
                                       : 0.0,
                    static_cast<unsigned long long>(result.network_bytes),
                    static_cast<unsigned long long>(result.network_messages),
                    static_cast<unsigned long long>(result.tuples_filtered));
        bench::BenchRow* row = report->AddRow(
            std::string(name) + " nodes=" + std::to_string(nodes) +
            (filter ? " filter=on" : " filter=off"));
        row->AddWallMs(result.wall_ms);
        for (const NodeExecutionMetrics& node : result.node_metrics) {
          row->counters += node.cpu;
        }
        row->AddValue("max_node_cpu_ms", result.max_node_cpu_ms);
        row->AddValue("max_node_ms", result.max_node_ms);
        row->AddValue("network_bytes",
                      static_cast<double>(result.network_bytes));
        row->AddValue("network_messages",
                      static_cast<double>(result.network_messages));
        row->AddValue("tuples_filtered",
                      static_cast<double>(result.tuples_filtered));
        row->AddValue("tuples_shipped",
                      static_cast<double>(result.tuples_shipped));
        row->AddValue("speedup", single_node_ms > 0
                                     ? single_node_ms / result.max_node_cpu_ms
                                     : 0.0);
      }
    }
  }

  std::printf("\nSpeedup reference: single-node local division costs %.1f ms "
              "(operation counters x Table 1 unit times, so host thread\n"
              "scheduling cannot distort it); the slowest node's cost "
              "shrinks roughly linearly with nodes — the local operators "
              "work completely independently (§6).\n",
              single_node_ms);
  std::printf("Bit-vector filtering drops dividend tuples with no divisor "
              "record before they are shipped; with %llu foreign tuples the "
              "network byte column shrinks accordingly (§6, Babb 1979).\n",
              static_cast<unsigned long long>(spec.nonmatching_tuples));
  return Status::OK();
}

}  // namespace
}  // namespace reldiv

int main() {
  reldiv::bench::BenchReporter report("parallel_scaleup");
  report.AddParam("smoke", reldiv::bench::SmokeMode() ? 1 : 0);
  reldiv::Status status = reldiv::Run(&report);
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  return report.WriteFile() ? 0 : 1;
}
