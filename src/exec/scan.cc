#include "exec/scan.h"

namespace reldiv {

Status ScanOperator::Open() {
  if (relation_.store == nullptr) {
    return Status::InvalidArgument("scan of relation without a store");
  }
  RELDIV_ASSIGN_OR_RETURN(scan_, relation_.store->OpenScan());
  return Status::OK();
}

Status ScanOperator::Next(Tuple* tuple, bool* has_next) {
  RecordRef ref;
  bool has = false;
  RELDIV_RETURN_NOT_OK(scan_->Next(&ref, &has));
  if (!has) {
    *has_next = false;
    return Status::OK();
  }
  RELDIV_RETURN_NOT_OK(codec_.Decode(ref.payload, tuple));
  *has_next = true;
  return Status::OK();
}

Status ScanOperator::Close() {
  if (scan_ != nullptr) {
    RELDIV_RETURN_NOT_OK(scan_->Close());
    scan_.reset();
  }
  return Status::OK();
}

}  // namespace reldiv
