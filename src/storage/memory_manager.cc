#include "storage/memory_manager.h"

#include <chrono>

#include "common/metric_names.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "testing/failpoint.h"

namespace reldiv {

bool MemoryPool::ReserveInner(size_t bytes, size_t* used_after) {
  if (RELDIV_FAILPOINT_DENIED("memory/reserve")) return false;
  while (true) {
    {
      MutexLock lock(mu_);
      if (used_ + bytes <= budget_) {
        used_ += bytes;
        *used_after = used_;
        return true;
      }
    }
    // Reclaim with the pool unlocked: the reclaimer re-enters the buffer
    // manager, whose lock the calling thread may already hold (Fix →
    // Reserve → TryShedFrame). A concurrent lane may win the freed budget
    // before this one re-checks — then the loop simply sheds again until
    // the reclaimer runs dry (frames are finite, so this terminates).
    if (!reclaimer_ || !reclaimer_()) {
      // Last re-check: a concurrent Release may have freed enough between
      // the failed check and the reclaimer running dry.
      MutexLock lock(mu_);
      if (used_ + bytes <= budget_) {
        used_ += bytes;
        *used_after = used_;
        return true;
      }
      return false;
    }
  }
}

bool MemoryPool::Reserve(size_t bytes) {
  // Grant latency covers the whole decision including reclaimer passes —
  // the §3.4 pressure signal. Clock reads only under kSampling.
  const bool sample = Telemetry::sampling();
  std::chrono::steady_clock::time_point start;
  if (sample) start = std::chrono::steady_clock::now();

  size_t used_after = 0;
  const bool granted = ReserveInner(bytes, &used_after);

  if (Telemetry::counting()) {
    if (granted) {
      static TelemetryGauge* high_water =
          MetricRegistry::Global().FindOrCreateGauge(
              metric_names::kMemHighWaterBytes);
      high_water->UpdateMax(used_after);
    } else {
      static TelemetryCounter* denials =
          MetricRegistry::Global().FindOrCreateCounter(
              metric_names::kMemGrantDenialsTotal);
      denials->Add(1);
      FlightRecorder::Global().Record(FlightEventCategory::kMemory,
                                      "grant_denied", "memory_pool", bytes);
    }
    if (sample) {
      static Histogram* latency = MetricRegistry::Global().FindOrCreateHistogram(
          metric_names::kMemGrantLatencyMicros);
      latency->Record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
  }
  return granted;
}

bool MemoryPool::WaitForSpace(
    size_t bytes, std::chrono::steady_clock::time_point deadline) {
  UniqueMutexLock lock(mu_);
  waiters_++;
  bool fits = used_ + bytes <= budget_;
  while (!fits) {
    if (release_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      fits = used_ + bytes <= budget_;
      break;
    }
    fits = used_ + bytes <= budget_;
  }
  waiters_--;
  return fits;
}

Status MemoryPool::ReserveWithDeadline(size_t bytes,
                                       std::chrono::milliseconds timeout) {
  if (Reserve(bytes)) return Status::OK();
  if (Telemetry::counting()) {
    static TelemetryCounter* waits = MetricRegistry::Global().FindOrCreateCounter(
        metric_names::kMemGrantWaitsTotal);
    waits->Add(1);
  }
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    // A denial with room in the pool is a forced failpoint denial or a lost
    // race against a concurrent grant — waiting on the condvar would return
    // immediately and degenerate into the busy spin this path replaces.
    if (HasSpaceFor(bytes)) {
      return Status::ResourceExhausted(
          "memory grant of " + std::to_string(bytes) + " bytes denied");
    }
    if (!WaitForSpace(bytes, deadline)) break;
    if (Reserve(bytes)) return Status::OK();
  }
  if (Telemetry::counting()) {
    static TelemetryCounter* timeouts =
        MetricRegistry::Global().FindOrCreateCounter(
            metric_names::kMemGrantTimeoutsTotal);
    timeouts->Add(1);
    FlightRecorder::Global().Record(FlightEventCategory::kMemory,
                                    "grant_timeout", "memory_pool", bytes);
  }
  return Status::ResourceExhausted(
      "memory grant of " + std::to_string(bytes) + " bytes not satisfied in " +
      std::to_string(timeout.count()) + " ms");
}

void* Arena::Allocate(size_t bytes) {
  const size_t aligned = (bytes + 7) & ~size_t{7};
  if (chunks_.empty() || chunks_.back().used + aligned > chunks_.back().size) {
    // Adapt the chunk size downward under memory pressure so that a small
    // remaining budget can still satisfy small allocations.
    size_t chunk_size = aligned > chunk_bytes_ ? aligned : chunk_bytes_;
    if (pool_ != nullptr) {
      const std::chrono::milliseconds timeout = pool_->wait_timeout();
      bool deadline_set = false;
      std::chrono::steady_clock::time_point deadline;
      while (!pool_->Reserve(chunk_size)) {
        if (chunk_size > aligned) {
          // Adapt downward first: a small remaining budget should satisfy a
          // small allocation before anyone blocks.
          chunk_size = chunk_size / 2 > aligned ? chunk_size / 2 : aligned;
          continue;
        }
        // The minimum-size grant was denied. With no wait budget this is
        // the §3.4 overflow signal, immediately; otherwise park on the
        // pool's release condvar until another query frees memory or the
        // deadline passes (the old code re-polled Reserve in a busy spin,
        // letting two contending queries starve each other indefinitely).
        // A denial with free space is failpoint-forced: also fail fast.
        if (timeout.count() <= 0 || pool_->HasSpaceFor(chunk_size)) {
          return nullptr;
        }
        if (!deadline_set) {
          deadline = std::chrono::steady_clock::now() + timeout;
          deadline_set = true;
        }
        if (!pool_->WaitForSpace(chunk_size, deadline)) return nullptr;
      }
    }
    Chunk chunk;
    chunk.data = std::make_unique<char[]>(chunk_size);
    chunk.size = chunk_size;
    chunks_.push_back(std::move(chunk));
    bytes_reserved_ += chunk_size;
  }
  Chunk& chunk = chunks_.back();
  void* out = chunk.data.get() + chunk.used;
  chunk.used += aligned;
  bytes_allocated_ += aligned;
  return out;
}

void Arena::Reset() {
  chunks_.clear();
  if (pool_ != nullptr) pool_->Release(bytes_reserved_);
  bytes_reserved_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace reldiv
