#include "planner/physical_planner.h"

#include <algorithm>

#include "common/config.h"
#include "division/count_filter.h"
#include "exec/contract_check.h"
#include "exec/filter.h"
#include "exec/hash_aggregate.h"
#include "exec/hash_join.h"
#include "exec/materialize.h"
#include "exec/merge_join.h"
#include "exec/project.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "storage/record_file.h"

namespace reldiv {

DivisionStats EstimateDivisionStats(const ResolvedDivision& resolved,
                                    const ExecContext* ctx) {
  DivisionStats stats;
  stats.dividend_tuples =
      static_cast<double>(resolved.dividend.store->num_records());
  stats.dividend_pages =
      static_cast<double>(resolved.dividend.store->num_pages());
  stats.divisor_tuples =
      static_cast<double>(resolved.divisor.store->num_records());
  stats.divisor_pages =
      std::max(1.0, static_cast<double>(resolved.divisor.store->num_pages()));
  stats.quotient_estimate =
      stats.divisor_tuples > 0
          ? stats.dividend_tuples / stats.divisor_tuples
          : stats.dividend_tuples;
  if (ctx != nullptr && ctx->pool() != nullptr) {
    stats.memory_pages =
        static_cast<double>(ctx->pool()->budget()) / kPageSize;
  }
  return stats;
}

namespace {

/// Rough per-entry bytes for the in-memory hash tables (chain element +
/// tuple estimate + bit-map share); used for the overflow prediction.
constexpr double kHashEntryBytes = 96;

}  // namespace

AnalyticalConfig AnalyticalConfigFromStats(const DivisionStats& stats) {
  AnalyticalConfig config;
  config.dividend_tuples = stats.dividend_tuples;
  config.dividend_pages = std::max(1.0, stats.dividend_pages);
  config.divisor_tuples = stats.divisor_tuples;
  config.divisor_pages = std::max(1.0, stats.divisor_pages);
  config.quotient_tuples = stats.quotient_estimate;
  config.quotient_pages = std::max(
      1.0, stats.divisor_tuples > 0
               ? stats.dividend_pages / stats.divisor_tuples
               : stats.dividend_pages);
  config.memory_pages = stats.memory_pages;
  return config;
}

AlgorithmChoice ChooseDivisionAlgorithm(const DivisionStats& stats,
                                        const CostUnits& units) {
  CostModel model(units);
  AnalyticalConfig config = AnalyticalConfigFromStats(stats);
  AlgorithmChoice choice;

  // Duplicate-elimination surcharge for the aggregation strategies: sort
  // both inputs with dup-elim and rewrite them (§2 / footnote 1).
  const double dedup_surcharge =
      stats.may_contain_duplicates
          ? model.SortCost(config.dividend_tuples, config.dividend_pages,
                           config) +
                model.SortCost(config.divisor_tuples, config.divisor_pages,
                               config) +
                2 * (config.dividend_pages + config.divisor_pages) *
                    units.sio_ms
          : 0;

  choice.predicted_ms[DivisionAlgorithm::kNaive] =
      model.NaiveDivisionCost(config);
  choice.predicted_ms[stats.divisor_restricted
                          ? DivisionAlgorithm::kSortAggregateWithJoin
                          : DivisionAlgorithm::kSortAggregate] =
      model.SortAggregationCost(config, stats.divisor_restricted) +
      dedup_surcharge;
  choice.predicted_ms[stats.divisor_restricted
                          ? DivisionAlgorithm::kHashAggregateWithJoin
                          : DivisionAlgorithm::kHashAggregate] =
      model.HashAggregationCost(config, stats.divisor_restricted) +
      dedup_surcharge;

  // Hash-division: check that divisor table + quotient table fit; predict
  // the §3.4 partitioned form (one extra partitioning read+write of the
  // dividend) otherwise.
  const double table_bytes =
      (stats.divisor_tuples + stats.quotient_estimate) * kHashEntryBytes +
      stats.quotient_estimate * (stats.divisor_tuples / 8);
  const double memory_bytes =
      stats.memory_pages * static_cast<double>(kPageSize);
  double hash_div = model.HashDivisionCost(config);
  if (table_bytes > 0.8 * memory_bytes) {
    choice.needs_partitioning = true;
    // Prefer the strategy that shrinks whichever table is oversized; the
    // divisor table must fit resident for quotient partitioning.
    choice.partition_strategy =
        stats.divisor_tuples * kHashEntryBytes > 0.5 * memory_bytes
            ? PartitionStrategy::kDivisor
            : PartitionStrategy::kQuotient;
    hash_div += 2 * config.dividend_pages * units.sio_ms;  // partition pass
    choice.predicted_ms[DivisionAlgorithm::kHashDivisionPartitioned] =
        hash_div;
  } else {
    choice.predicted_ms[DivisionAlgorithm::kHashDivision] = hash_div;
  }

  choice.algorithm = DivisionAlgorithm::kHashDivision;
  double best = 1e300;
  for (const auto& [algorithm, ms] : choice.predicted_ms) {
    if (ms < best) {
      best = ms;
      choice.algorithm = algorithm;
    }
  }
  return choice;
}

Result<std::unique_ptr<Operator>> PlanDivision(ExecContext* ctx,
                                               const DivisionQuery& query,
                                               const DivisionOptions&
                                                   base_options,
                                               AlgorithmChoice* choice_out) {
  RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved, ResolveDivision(query));
  DivisionStats stats = EstimateDivisionStats(resolved, ctx);
  stats.may_contain_duplicates = base_options.eliminate_duplicates;
  // Without schema-level integrity knowledge the planner stays safe and
  // treats the divisor as potentially restricted.
  stats.divisor_restricted = true;
  AlgorithmChoice choice = ChooseDivisionAlgorithm(stats);
  if (choice_out != nullptr) *choice_out = choice;
  DivisionOptions options = base_options;
  options.partition_strategy = choice.partition_strategy;
  if (choice.needs_partitioning &&
      choice.algorithm == DivisionAlgorithm::kHashDivisionPartitioned) {
    const double memory_bytes =
        stats.memory_pages * static_cast<double>(kPageSize);
    const double table_bytes =
        (stats.divisor_tuples + stats.quotient_estimate) * 96 +
        stats.quotient_estimate * (stats.divisor_tuples / 8);
    options.num_partitions = static_cast<size_t>(
        std::max(2.0, 2 * table_bytes / std::max(1.0, memory_bytes)) + 1);
  }
  return MakeDivisionPlan(ctx, query, choice.algorithm, options);
}

namespace {

struct CompileState {
  ExecContext* ctx;
  std::vector<std::unique_ptr<RecordStore>>* owned;
  CompileOptions options;
  int temp_counter = 0;
};

Result<std::unique_ptr<Operator>> CompileNode(const LogicalNode& node,
                                              CompileState* state);

/// Compiles `node` into a stored Relation: base relations pass through;
/// anything else is evaluated into a temporary record file.
Result<Relation> CompileToRelation(const LogicalNode& node,
                                   CompileState* state) {
  if (node.kind() == LogicalNodeKind::kRelation) {
    return static_cast<const LogicalRelationNode&>(node).relation();
  }
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> plan,
                          CompileNode(node, state));
  auto store = std::make_unique<RecordFile>(
      state->ctx->disk(), state->ctx->buffer_manager(),
      "planner-temp-" + std::to_string(state->temp_counter++));
  RELDIV_ASSIGN_OR_RETURN(
      uint64_t n,
      Materialize(plan.get(), store.get(), state->ctx->batch_capacity()));
  (void)n;
  Relation relation{plan->output_schema(), store.get()};
  state->owned->push_back(std::move(store));
  return relation;
}

Result<std::unique_ptr<Operator>> CompileNode(const LogicalNode& node,
                                              CompileState* state) {
  switch (node.kind()) {
    case LogicalNodeKind::kRelation: {
      const auto& relation = static_cast<const LogicalRelationNode&>(node);
      return std::unique_ptr<Operator>(
          std::make_unique<ScanOperator>(state->ctx, relation.relation()));
    }
    case LogicalNodeKind::kSelect: {
      const auto& select = static_cast<const LogicalSelectNode&>(node);
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> input,
                              CompileNode(node.child(0), state));
      return std::unique_ptr<Operator>(std::make_unique<FilterOperator>(
          std::move(input), select.predicate()));
    }
    case LogicalNodeKind::kProject: {
      const auto& project = static_cast<const LogicalProjectNode&>(node);
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> input,
                              CompileNode(node.child(0), state));
      std::unique_ptr<Operator> plan = std::make_unique<ProjectOperator>(
          std::move(input), project.indices());
      if (project.distinct()) {
        SortSpec spec;
        spec.keys.resize(project.indices().size());
        for (size_t i = 0; i < spec.keys.size(); ++i) spec.keys[i] = i;
        spec.collapse_equal_keys = true;
        plan = std::make_unique<SortOperator>(state->ctx, std::move(plan),
                                              std::move(spec));
      }
      return plan;
    }
    case LogicalNodeKind::kSemiJoin: {
      const auto& semi = static_cast<const LogicalSemiJoinNode&>(node);
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> left,
                              CompileNode(node.child(0), state));
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> right,
                              CompileNode(node.child(1), state));
      if (state->options.engine == PhysicalEngine::kSortBased) {
        // System R / Ingres shape: sort both inputs, merge semi-join.
        SortSpec left_sort;
        left_sort.keys = semi.left_keys();
        SortSpec right_sort;
        right_sort.keys = semi.right_keys();
        auto sorted_left = std::make_unique<SortOperator>(
            state->ctx, std::move(left), std::move(left_sort));
        auto sorted_right = std::make_unique<SortOperator>(
            state->ctx, std::move(right), std::move(right_sort));
        return std::unique_ptr<Operator>(std::make_unique<MergeJoinOperator>(
            state->ctx, std::move(sorted_left), std::move(sorted_right),
            semi.left_keys(), semi.right_keys(), MergeJoinMode::kLeftSemi));
      }
      return std::unique_ptr<Operator>(std::make_unique<HashJoinOperator>(
          state->ctx, std::move(left), std::move(right), semi.left_keys(),
          semi.right_keys(), HashJoinMode::kLeftSemi));
    }
    case LogicalNodeKind::kAntiJoin: {
      // NOT EXISTS: hash anti-join under both engines — the merge join has
      // no anti mode, and the sort engine's distinguishing shapes (semi
      // join, aggregation during sorting) are unaffected by this choice.
      const auto& anti = static_cast<const LogicalAntiJoinNode&>(node);
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> left,
                              CompileNode(node.child(0), state));
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> right,
                              CompileNode(node.child(1), state));
      return std::unique_ptr<Operator>(std::make_unique<HashJoinOperator>(
          state->ctx, std::move(left), std::move(right), anti.left_keys(),
          anti.right_keys(), HashJoinMode::kLeftAnti));
    }
    case LogicalNodeKind::kCrossJoin: {
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> left,
                              CompileNode(node.child(0), state));
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> right,
                              CompileNode(node.child(1), state));
      // Inner hash join on zero key columns: every build tuple lands in one
      // bucket, every probe tuple compares equal on the empty key, and the
      // match fan-out enumerates the full product.
      return std::unique_ptr<Operator>(std::make_unique<HashJoinOperator>(
          state->ctx, std::move(left), std::move(right),
          std::vector<size_t>{}, std::vector<size_t>{},
          HashJoinMode::kInner));
    }
    case LogicalNodeKind::kExcept: {
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> left,
                              CompileNode(node.child(0), state));
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> right,
                              CompileNode(node.child(1), state));
      // Set semantics: distinct the left input (sort collapsing equal
      // keys), then anti-join against the right on every column.
      std::vector<size_t> all_columns(
          node.child(0).output_schema().num_fields());
      for (size_t i = 0; i < all_columns.size(); ++i) all_columns[i] = i;
      SortSpec spec;
      spec.keys = all_columns;
      spec.collapse_equal_keys = true;
      auto distinct_left = std::make_unique<SortOperator>(
          state->ctx, std::move(left), std::move(spec));
      return std::unique_ptr<Operator>(std::make_unique<HashJoinOperator>(
          state->ctx, std::move(distinct_left), std::move(right), all_columns,
          all_columns, HashJoinMode::kLeftAnti));
    }
    case LogicalNodeKind::kGroupCount: {
      const auto& gc = static_cast<const LogicalGroupCountNode&>(node);
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> input,
                              CompileNode(node.child(0), state));
      if (state->options.engine == PhysicalEngine::kSortBased) {
        // Aggregation during sorting (§2.2.1): lift each tuple to
        // (group cols..., 1) and sum counts for equal keys.
        SortSpec spec;
        spec.keys.resize(gc.group_indices().size());
        for (size_t i = 0; i < spec.keys.size(); ++i) spec.keys[i] = i;
        spec.collapse_equal_keys = true;
        const std::vector<size_t> group = gc.group_indices();
        spec.lift = [group](const Tuple& t) {
          Tuple lifted = t.Project(group);
          lifted.Append(Value::Int64(1));
          return lifted;
        };
        spec.lifted_schema = gc.output_schema();
        const size_t count_col = group.size();
        spec.merge = [count_col](Tuple* acc, const Tuple& next) {
          acc->value(count_col) =
              Value::Int64(acc->value(count_col).int64() +
                           next.value(count_col).int64());
        };
        return std::unique_ptr<Operator>(std::make_unique<SortOperator>(
            state->ctx, std::move(input), std::move(spec)));
      }
      return std::unique_ptr<Operator>(
          std::make_unique<HashAggregateOperator>(
              state->ctx, std::move(input), gc.group_indices(),
              std::vector<AggSpec>{AggSpec{AggFn::kCount, 0, "count"}}));
    }
    case LogicalNodeKind::kCountFilter: {
      RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> input,
                              CompileNode(node.child(0), state));
      RELDIV_ASSIGN_OR_RETURN(Relation divisor,
                              CompileToRelation(node.child(1), state));
      return std::unique_ptr<Operator>(
          std::make_unique<GroupCountFilterOperator>(state->ctx,
                                                     std::move(input),
                                                     divisor));
    }
    case LogicalNodeKind::kDivision: {
      const auto& division = static_cast<const LogicalDivisionNode&>(node);
      RELDIV_ASSIGN_OR_RETURN(Relation dividend,
                              CompileToRelation(node.child(0), state));
      RELDIV_ASSIGN_OR_RETURN(Relation divisor,
                              CompileToRelation(node.child(1), state));
      DivisionQuery query;
      query.dividend = dividend;
      query.divisor = divisor;
      for (size_t idx : division.match_attrs()) {
        query.match_attrs.push_back(dividend.schema.field(idx).name);
      }
      return PlanDivision(state->ctx, query);
    }
  }
  return Status::NotSupported("unknown logical node kind");
}

}  // namespace

Result<std::unique_ptr<Operator>> CompileLogicalPlan(
    ExecContext* ctx, LogicalNodePtr plan, const CompileOptions& options) {
  auto owned = std::make_unique<std::vector<std::unique_ptr<RecordStore>>>();
  CompileState state{ctx, owned.get(), options, 0};
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> compiled,
                          CompileNode(*plan, &state));
  if (!owned->empty()) {
    compiled = std::make_unique<OwningOperator>(std::move(compiled),
                                                std::move(*owned));
  }
  // Division sub-plans are already wrapped by MakeDivisionPlan; wrapping the
  // compiled root as well validates the glue operators (scans, sorts,
  // joins, projections) the planner added around them.
  return MaybeContractCheck(ctx, std::move(compiled), "compiled-plan");
}

}  // namespace reldiv
