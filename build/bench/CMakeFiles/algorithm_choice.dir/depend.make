# Empty dependencies file for algorithm_choice.
# This may be replaced when dependencies are built.
