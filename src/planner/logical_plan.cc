#include "planner/logical_plan.h"

namespace reldiv {

const char* LogicalNodeKindName(LogicalNodeKind kind) {
  switch (kind) {
    case LogicalNodeKind::kRelation:
      return "Relation";
    case LogicalNodeKind::kSelect:
      return "Select";
    case LogicalNodeKind::kProject:
      return "Project";
    case LogicalNodeKind::kSemiJoin:
      return "SemiJoin";
    case LogicalNodeKind::kAntiJoin:
      return "AntiJoin";
    case LogicalNodeKind::kCrossJoin:
      return "CrossJoin";
    case LogicalNodeKind::kExcept:
      return "Except";
    case LogicalNodeKind::kGroupCount:
      return "GroupCount";
    case LogicalNodeKind::kCountFilter:
      return "CountFilter";
    case LogicalNodeKind::kDivision:
      return "Division";
  }
  return "Unknown";
}

namespace {

std::string IndexList(const std::vector<size_t>& indices) {
  std::string out = "[";
  for (size_t i = 0; i < indices.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(indices[i]);
  }
  out += "]";
  return out;
}

}  // namespace

void LogicalNode::Render(std::string* out, int indent) const {
  out->append(static_cast<size_t>(indent) * 2, ' ');
  out->append(Describe());
  out->push_back('\n');
  for (size_t i = 0; i < num_children(); ++i) {
    child(i).Render(out, indent + 1);
  }
}

std::string LogicalNode::ToString() const {
  std::string out;
  Render(&out, 0);
  return out;
}

std::string LogicalRelationNode::Describe() const {
  return "Relation " + name_ + " " + relation_.schema.ToString();
}

std::string LogicalSelectNode::Describe() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "Select (selectivity %.2f)", selectivity_);
  return buf;
}

std::string LogicalProjectNode::Describe() const {
  return std::string("Project ") + IndexList(indices_) +
         (distinct_ ? " DISTINCT" : "");
}

std::string LogicalSemiJoinNode::Describe() const {
  return "SemiJoin left" + IndexList(left_keys_) + " = right" +
         IndexList(right_keys_);
}

std::string LogicalAntiJoinNode::Describe() const {
  return "AntiJoin left" + IndexList(left_keys_) + " = right" +
         IndexList(right_keys_);
}

LogicalCrossJoinNode::LogicalCrossJoinNode(LogicalNodePtr left,
                                           LogicalNodePtr right)
    : LogicalNode(LogicalNodeKind::kCrossJoin),
      left_(std::move(left)),
      right_(std::move(right)) {
  std::vector<Field> fields = left_->output_schema().fields();
  for (const Field& f : right_->output_schema().fields()) {
    fields.push_back(f);
  }
  schema_ = Schema(std::move(fields));
}

std::string LogicalCrossJoinNode::Describe() const { return "CrossJoin"; }

std::string LogicalExceptNode::Describe() const {
  return "Except (positional, set semantics)";
}

LogicalGroupCountNode::LogicalGroupCountNode(LogicalNodePtr input,
                                             std::vector<size_t> group_indices)
    : LogicalNode(LogicalNodeKind::kGroupCount),
      input_(std::move(input)),
      group_indices_(std::move(group_indices)) {
  std::vector<Field> fields;
  for (size_t idx : group_indices_) {
    fields.push_back(input_->output_schema().field(idx));
  }
  fields.push_back(Field{"count", ValueType::kInt64});
  schema_ = Schema(std::move(fields));
}

std::string LogicalGroupCountNode::Describe() const {
  return "GroupCount by " + IndexList(group_indices_);
}

LogicalCountFilterNode::LogicalCountFilterNode(LogicalNodePtr input,
                                               LogicalNodePtr compare_to)
    : LogicalNode(LogicalNodeKind::kCountFilter),
      input_(std::move(input)),
      compare_to_(std::move(compare_to)) {
  std::vector<Field> fields = input_->output_schema().fields();
  if (!fields.empty()) fields.pop_back();  // the count column
  schema_ = Schema(std::move(fields));
}

std::string LogicalCountFilterNode::Describe() const {
  return "CountFilter (count == |child 1|)";
}

LogicalDivisionNode::LogicalDivisionNode(LogicalNodePtr dividend,
                                         LogicalNodePtr divisor,
                                         std::vector<size_t> match_attrs)
    : LogicalNode(LogicalNodeKind::kDivision),
      dividend_(std::move(dividend)),
      divisor_(std::move(divisor)),
      match_attrs_(std::move(match_attrs)),
      quotient_attrs_(
          dividend_->output_schema().ComplementIndices(match_attrs_)),
      schema_(dividend_->output_schema().Project(quotient_attrs_)) {}

std::string LogicalDivisionNode::Describe() const {
  return "Division on dividend" + IndexList(match_attrs_) + " (quotient " +
         IndexList(quotient_attrs_) + ")";
}

}  // namespace reldiv
