# Empty dependencies file for course_audit.
# This may be replaced when dependencies are built.
