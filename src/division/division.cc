#include "division/division.h"

#include <chrono>

#include "common/metric_names.h"
#include "division/fallback_division.h"
#include "division/hash_agg_division.h"
#include "division/hash_division.h"
#include "division/naive_division.h"
#include "division/partitioned_hash_division.h"
#include "division/sort_agg_division.h"
#include "exec/contract_check.h"
#include "exec/fused/fused_division.h"
#include "exec/materialize.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "obs/profiled_operator.h"
#include "obs/telemetry.h"
#include "storage/record_file.h"

namespace reldiv {

const char* DivisionAlgorithmName(DivisionAlgorithm algorithm) {
  switch (algorithm) {
    case DivisionAlgorithm::kNaive:
      return "naive-division";
    case DivisionAlgorithm::kSortAggregate:
      return "sort-aggregation";
    case DivisionAlgorithm::kSortAggregateWithJoin:
      return "sort-aggregation+join";
    case DivisionAlgorithm::kHashAggregate:
      return "hash-aggregation";
    case DivisionAlgorithm::kHashAggregateWithJoin:
      return "hash-aggregation+join";
    case DivisionAlgorithm::kHashDivision:
      return "hash-division";
    case DivisionAlgorithm::kHashDivisionPartitioned:
      return "hash-division-partitioned";
  }
  return "unknown";
}

Result<ResolvedDivision> ResolveDivision(const DivisionQuery& query) {
  if (query.dividend.store == nullptr || query.divisor.store == nullptr) {
    return Status::InvalidArgument("division inputs must be stored relations");
  }
  ResolvedDivision resolved;
  resolved.dividend = query.dividend;
  resolved.divisor = query.divisor;
  RELDIV_ASSIGN_OR_RETURN(
      resolved.match_attrs,
      query.dividend.schema.FieldIndices(query.match_attrs));
  if (resolved.match_attrs.size() != query.divisor.schema.num_fields()) {
    return Status::InvalidArgument(
        "match attribute count (" +
        std::to_string(resolved.match_attrs.size()) +
        ") must equal the divisor arity (" +
        std::to_string(query.divisor.schema.num_fields()) + ")");
  }
  for (size_t i = 0; i < resolved.match_attrs.size(); ++i) {
    const Field& dividend_field =
        query.dividend.schema.field(resolved.match_attrs[i]);
    const Field& divisor_field = query.divisor.schema.field(i);
    if (dividend_field.type != divisor_field.type) {
      return Status::InvalidArgument(
          "type mismatch between dividend '" + dividend_field.name +
          "' and divisor '" + divisor_field.name + "'");
    }
  }
  resolved.quotient_attrs =
      query.dividend.schema.ComplementIndices(resolved.match_attrs);
  if (resolved.quotient_attrs.empty()) {
    return Status::InvalidArgument(
        "division without quotient attributes (all dividend columns are "
        "matched against the divisor)");
  }
  resolved.quotient_schema =
      query.dividend.schema.Project(resolved.quotient_attrs);
  return resolved;
}

namespace {

/// Materializes DISTINCT(input) into a fresh temporary record file using a
/// sort with duplicate elimination.
Result<std::unique_ptr<RecordStore>> MaterializeDistinct(
    ExecContext* ctx, const Relation& input, const char* label) {
  SortSpec spec;
  spec.keys.resize(input.schema.num_fields());
  for (size_t i = 0; i < spec.keys.size(); ++i) spec.keys[i] = i;
  spec.collapse_equal_keys = true;
  std::unique_ptr<Operator> sorter = std::make_unique<SortOperator>(
      ctx, std::make_unique<ScanOperator>(ctx, input), std::move(spec));
  sorter = MaybeProfile(ctx, std::move(sorter), label);
  auto store = std::make_unique<RecordFile>(ctx->disk(),
                                            ctx->buffer_manager(), label);
  RELDIV_ASSIGN_OR_RETURN(
      uint64_t written,
      Materialize(sorter.get(), store.get(), ctx->batch_capacity()));
  (void)written;
  // The pre-pass ran to completion; seal its metrics tree so the main plan
  // does not adopt it as an operator child.
  if (ctx->profiling()) ctx->profile()->SealRoots();
  return std::unique_ptr<RecordStore>(std::move(store));
}

/// All dividend columns in (quotient major, divisor minor) order — the naive
/// algorithm's dividend sort key.
std::vector<size_t> NaiveDividendSortKeys(const ResolvedDivision& resolved) {
  std::vector<size_t> keys = resolved.quotient_attrs;
  keys.insert(keys.end(), resolved.match_attrs.begin(),
              resolved.match_attrs.end());
  return keys;
}

}  // namespace

Result<std::unique_ptr<Operator>> MakeDivisionPlan(
    ExecContext* ctx, const DivisionQuery& query, DivisionAlgorithm algorithm,
    const DivisionOptions& options) {
  RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved, ResolveDivision(query));

  // The aggregation strategies require duplicate-free inputs; pre-process
  // them on request. Naive division eliminates duplicates in its sorts and
  // hash-division is natively insensitive to duplicates, so neither needs
  // this (§3.3).
  std::vector<std::unique_ptr<RecordStore>> owned;
  const bool aggregation_family =
      algorithm == DivisionAlgorithm::kSortAggregate ||
      algorithm == DivisionAlgorithm::kSortAggregateWithJoin ||
      algorithm == DivisionAlgorithm::kHashAggregate ||
      algorithm == DivisionAlgorithm::kHashAggregateWithJoin;
  if (options.eliminate_duplicates && aggregation_family) {
    RELDIV_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordStore> distinct_dividend,
        MaterializeDistinct(ctx, resolved.dividend, "distinct-dividend"));
    RELDIV_ASSIGN_OR_RETURN(
        std::unique_ptr<RecordStore> distinct_divisor,
        MaterializeDistinct(ctx, resolved.divisor, "distinct-divisor"));
    resolved.dividend.store = distinct_dividend.get();
    resolved.divisor.store = distinct_divisor.get();
    owned.push_back(std::move(distinct_dividend));
    owned.push_back(std::move(distinct_divisor));
  }

  std::unique_ptr<Operator> plan;
  switch (algorithm) {
    case DivisionAlgorithm::kNaive: {
      // Sort the dividend on (quotient attrs major, divisor attrs minor) and
      // the divisor on all attributes, eliminating duplicates during the
      // initial sort phase (§2.2 aside).
      SortSpec dividend_sort;
      dividend_sort.keys = NaiveDividendSortKeys(resolved);
      dividend_sort.collapse_equal_keys = true;
      auto sorted_dividend = MaybeProfile(
          ctx,
          std::make_unique<SortOperator>(
              ctx,
              MaybeProfile(ctx,
                           std::make_unique<ScanOperator>(ctx,
                                                          resolved.dividend),
                           "scan(dividend)"),
              std::move(dividend_sort)),
          "sort(dividend)");

      SortSpec divisor_sort;
      divisor_sort.keys.resize(resolved.divisor.schema.num_fields());
      for (size_t i = 0; i < divisor_sort.keys.size(); ++i) {
        divisor_sort.keys[i] = i;
      }
      divisor_sort.collapse_equal_keys = true;
      // The divisor subtree is a sibling of the finished dividend subtree;
      // the mark keeps its wrappers from adopting the dividend's tree.
      const size_t divisor_mark = ProfileMark(ctx);
      auto sorted_divisor = MaybeProfile(
          ctx,
          std::make_unique<SortOperator>(
              ctx,
              MaybeProfile(ctx,
                           std::make_unique<ScanOperator>(ctx,
                                                          resolved.divisor),
                           "scan(divisor)", divisor_mark),
              std::move(divisor_sort)),
          "sort(divisor)", divisor_mark);

      plan = std::make_unique<NaiveDivisionOperator>(
          ctx, std::move(sorted_dividend), std::move(sorted_divisor),
          resolved.match_attrs, resolved.quotient_attrs);
      break;
    }
    case DivisionAlgorithm::kSortAggregate:
    case DivisionAlgorithm::kSortAggregateWithJoin: {
      RELDIV_ASSIGN_OR_RETURN(
          plan, MakeSortAggregationDivisionPlan(
                    ctx, resolved,
                    algorithm == DivisionAlgorithm::kSortAggregateWithJoin,
                    options));
      break;
    }
    case DivisionAlgorithm::kHashAggregate:
    case DivisionAlgorithm::kHashAggregateWithJoin: {
      RELDIV_ASSIGN_OR_RETURN(
          plan, MakeHashAggregationDivisionPlan(
                    ctx, resolved,
                    algorithm == DivisionAlgorithm::kHashAggregateWithJoin,
                    options));
      break;
    }
    case DivisionAlgorithm::kHashDivision: {
      if (options.overflow_fallback) {
        // The fallback operator builds its own scans (it may need to build
        // them twice — once per attempt), so it bypasses the per-input
        // profiling wrappers; its own node still joins the metrics tree.
        plan = std::make_unique<FallbackDivisionOperator>(ctx, resolved,
                                                          options);
        break;
      }
      DivisionOptions tuned = options;
      if (tuned.expected_divisor_cardinality == 0) {
        tuned.expected_divisor_cardinality =
            resolved.divisor.store->num_records();
      }
      if (options.fused_pipelines) {
        // Fused dividend side: the scan is inlined into the probe loop, so
        // only the divisor subtree gets its own profiling node. The fused
        // root composes with MaybeProfile/MaybeContractCheck below like any
        // operator.
        const size_t divisor_mark = ProfileMark(ctx);
        auto divisor_scan = MaybeProfile(
            ctx, std::make_unique<ScanOperator>(ctx, resolved.divisor),
            "scan(divisor)", divisor_mark);
        plan = fused::MakeFusedHashDivision(ctx, resolved,
                                            std::move(divisor_scan), tuned);
        break;
      }
      // Build the input wrappers as sequenced statements: the metrics tree
      // relies on creation order, which function arguments do not guarantee.
      auto dividend_scan = MaybeProfile(
          ctx, std::make_unique<ScanOperator>(ctx, resolved.dividend),
          "scan(dividend)");
      const size_t divisor_mark = ProfileMark(ctx);
      auto divisor_scan = MaybeProfile(
          ctx, std::make_unique<ScanOperator>(ctx, resolved.divisor),
          "scan(divisor)", divisor_mark);
      plan = std::make_unique<HashDivisionOperator>(
          ctx, std::move(dividend_scan), std::move(divisor_scan),
          resolved.match_attrs, resolved.quotient_attrs, tuned);
      break;
    }
    case DivisionAlgorithm::kHashDivisionPartitioned: {
      plan = std::make_unique<PartitionedHashDivisionOperator>(ctx, resolved,
                                                               options);
      break;
    }
  }
  if (plan == nullptr) {
    return Status::NotSupported("unknown division algorithm");
  }
  if (!owned.empty()) {
    plan = std::make_unique<OwningOperator>(std::move(plan),
                                            std::move(owned));
  }
  // Observability root wrapper: adopts every metrics node registered while
  // building this plan, then the finished tree is sealed so a later plan on
  // the same context becomes a sibling root.
  plan = MaybeProfile(ctx, std::move(plan), DivisionAlgorithmName(algorithm));
  if (ctx->profiling()) ctx->profile()->SealRoots();
  // Debug builds of a plan can run under runtime protocol validation; the
  // wrapper is a no-op pass-through unless ctx->contract_checks() is set.
  return MaybeContractCheck(ctx, std::move(plan),
                            DivisionAlgorithmName(algorithm));
}

Result<std::vector<Tuple>> Divide(ExecContext* ctx,
                                  const DivisionQuery& query,
                                  DivisionAlgorithm algorithm,
                                  const DivisionOptions& options) {
  // End-to-end wall time per algorithm feeds the process-wide latency
  // percentiles (clock reads only under Telemetry::sampling()).
  const bool sample = Telemetry::sampling();
  std::chrono::steady_clock::time_point start;
  if (sample) start = std::chrono::steady_clock::now();
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> plan,
                          MakeDivisionPlan(ctx, query, algorithm, options));
  Result<std::vector<Tuple>> result =
      CollectAll(plan.get(), ctx->batch_capacity());
  if (sample && result.ok()) {
    Histogram* wall = MetricRegistry::Global().FindOrCreateHistogram(
        metric_names::kQueryWallMicros, "algorithm",
        DivisionAlgorithmName(algorithm));
    wall->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  return result;
}

}  // namespace reldiv
