#!/usr/bin/env python3
"""Validate and diff BENCH_<name>.json files emitted by the bench binaries.

Schema (version 1, produced by bench/bench_util.h BenchReporter):

  { "schema_version": 1, "name": str, "params": {str: str|number},
    "repetitions": int >= 1,
    "rows": [ { "label": str, "repetitions": int >= 1,
                "median_wall_ns": number, "p90_wall_ns": number,
                "counters": {"comparisons","hashes","moves","bit_ops"},
                "io": {"transfers","seeks","kbytes","reads","writes"},
                "values": {str: number} } ] }

The counter/io key sets are cross-checked against the `bench-schema:` blocks
of src/common/metric_names.h (the single source of truth for metric field
names); any drift between the C++ constants and this script fails both
commands before any file is examined.

Usage:
  bench_report.py validate FILE_OR_DIR...
      Exit 1 if any file fails schema validation (schema drift).
  bench_report.py diff BASELINE_DIR CURRENT_DIR [--threshold 0.10]
      Match files by bench name and rows by label; report wall-time and
      counter changes. Exit 1 on schema errors, 2 if any regression
      exceeds the threshold (wall time only; counters are deterministic
      and any change is reported but not fatal by default).
"""

import argparse
import json
import os
import re
import sys

COUNTER_KEYS = ("comparisons", "hashes", "moves", "bit_ops")
IO_KEYS = ("transfers", "seeks", "kbytes", "reads", "writes")

# Single source of truth for the counter/io key sets; parsed so that a key
# renamed in C++ without updating this script (or vice versa) fails the
# validate/diff commands instead of silently passing stale schemas.
METRIC_NAMES_HEADER = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, "src", "common",
    "metric_names.h")

_SCHEMA_BLOCK_RE = re.compile(r"//\s*bench-schema:\s*(\w+)")
_SCHEMA_NAME_RE = re.compile(
    r'inline\s+constexpr\s+char\s+k\w+\[\]\s*=\s*"([^"]+)"\s*;')


def parse_schema_blocks(header_path=METRIC_NAMES_HEADER):
    """Parses the `// bench-schema:` blocks of metric_names.h.

    Returns {section: tuple_of_names}. Raises OSError if the header is
    missing and ValueError on a malformed block.
    """
    sections = {}
    current = None
    with open(header_path, "r", encoding="utf-8") as f:
        for line_no, line in enumerate(f, start=1):
            marker = _SCHEMA_BLOCK_RE.search(line)
            if marker:
                section = marker.group(1)
                if section == "end":
                    current = None
                else:
                    if section in sections:
                        raise ValueError(
                            f"{header_path}:{line_no}: duplicate "
                            f"bench-schema section {section!r}")
                    current = section
                    sections[current] = []
                continue
            if current is None:
                continue
            name = _SCHEMA_NAME_RE.search(line)
            if name:
                sections[current].append(name.group(1))
            elif line.strip():
                raise ValueError(
                    f"{header_path}:{line_no}: unparseable line inside "
                    f"bench-schema block {current!r}: {line.strip()!r}")
    return {section: tuple(names) for section, names in sections.items()}


def check_schema_source():
    """Compares this script's key sets with metric_names.h.

    Returns a list of drift messages (empty = in sync).
    """
    try:
        sections = parse_schema_blocks()
    except (OSError, ValueError) as exc:
        return [f"cannot parse bench-schema blocks: {exc}"]
    errors = []
    for section, expected in (("counters", COUNTER_KEYS), ("io", IO_KEYS)):
        actual = sections.get(section)
        if actual is None:
            errors.append(
                f"metric_names.h has no bench-schema section {section!r}")
        elif actual != expected:
            errors.append(
                f"schema drift in section {section!r}: metric_names.h "
                f"declares {list(actual)}, bench_report.py expects "
                f"{list(expected)}")
    return errors


def _fail(errors, path, message):
    errors.append(f"{path}: {message}")


def _check_number(errors, path, obj, key, minimum=None):
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(errors, path, f"'{key}' must be a number, got {value!r}")
        return
    if minimum is not None and value < minimum:
        _fail(errors, path, f"'{key}' must be >= {minimum}, got {value!r}")


def validate_doc(doc, path):
    """Returns a list of schema-violation messages (empty = valid)."""
    errors = []
    if not isinstance(doc, dict):
        _fail(errors, path, "top level must be an object")
        return errors
    if doc.get("schema_version") != 1:
        _fail(errors, path,
              f"schema_version must be 1, got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("name"), str) or not doc.get("name"):
        _fail(errors, path, "'name' must be a non-empty string")
    if not isinstance(doc.get("params"), dict):
        _fail(errors, path, "'params' must be an object")
    else:
        for key, value in doc["params"].items():
            if not isinstance(value, (str, int, float)) or isinstance(
                    value, bool):
                _fail(errors, path,
                      f"param {key!r} must be a string or number")
    _check_number(errors, path, doc, "repetitions", minimum=1)
    rows = doc.get("rows")
    if not isinstance(rows, list):
        _fail(errors, path, "'rows' must be an array")
        return errors
    if not rows:
        _fail(errors, path, "'rows' must not be empty")
    seen_labels = set()
    for i, row in enumerate(rows):
        where = f"{path} rows[{i}]"
        if not isinstance(row, dict):
            _fail(errors, where, "row must be an object")
            continue
        label = row.get("label")
        if not isinstance(label, str) or not label:
            _fail(errors, where, "'label' must be a non-empty string")
        elif label in seen_labels:
            _fail(errors, where, f"duplicate row label {label!r}")
        else:
            seen_labels.add(label)
        _check_number(errors, where, row, "repetitions", minimum=1)
        _check_number(errors, where, row, "median_wall_ns", minimum=0)
        _check_number(errors, where, row, "p90_wall_ns", minimum=0)
        for group, keys in (("counters", COUNTER_KEYS), ("io", IO_KEYS)):
            obj = row.get(group)
            if not isinstance(obj, dict):
                _fail(errors, where, f"'{group}' must be an object")
                continue
            for key in keys:
                _check_number(errors, where + f" {group}", obj, key,
                              minimum=0)
            extra = set(obj) - set(keys)
            if extra:
                _fail(errors, where,
                      f"unexpected keys in '{group}': {sorted(extra)}")
        values = row.get("values")
        if not isinstance(values, dict):
            _fail(errors, where, "'values' must be an object")
        else:
            for key, value in values.items():
                if not isinstance(value, (int, float)) or isinstance(
                        value, bool):
                    _fail(errors, where, f"value {key!r} must be a number")
    return errors


def collect_files(paths):
    files = []
    for path in paths:
        if os.path.isdir(path):
            files.extend(
                os.path.join(path, entry)
                for entry in sorted(os.listdir(path))
                if entry.startswith("BENCH_") and entry.endswith(".json"))
        else:
            files.append(path)
    return files


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def cmd_validate(args):
    drift = check_schema_source()
    if drift:
        for message in drift:
            print(f"FAIL {message}")
        return 1
    files = collect_files(args.paths)
    if not files:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = 0
    for path in files:
        try:
            doc = load(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {path}: {exc}")
            failures += 1
            continue
        errors = validate_doc(doc, path)
        if errors:
            failures += 1
            print(f"FAIL {path}")
            for error in errors:
                print(f"  {error}")
        else:
            print(f"ok   {path} ({len(doc['rows'])} rows)")
    return 1 if failures else 0


def _row_index(doc):
    return {row["label"]: row for row in doc["rows"]}


def cmd_diff(args):
    drift = check_schema_source()
    if drift:
        for message in drift:
            print(f"FAIL {message}")
        return 1
    base_files = {os.path.basename(p): p
                  for p in collect_files([args.baseline])}
    cur_files = {os.path.basename(p): p
                 for p in collect_files([args.current])}
    if not base_files or not cur_files:
        print("no BENCH_*.json files found in one of the directories",
              file=sys.stderr)
        return 1
    schema_errors = 0
    regressions = 0
    for name in sorted(set(base_files) | set(cur_files)):
        if name not in base_files:
            print(f"[new bench] {name}")
            continue
        if name not in cur_files:
            print(f"[missing bench] {name}")
            continue
        try:
            base = load(base_files[name])
            cur = load(cur_files[name])
        except (OSError, json.JSONDecodeError) as exc:
            print(f"FAIL {name}: {exc}")
            schema_errors += 1
            continue
        for doc, path in ((base, base_files[name]), (cur, cur_files[name])):
            errors = validate_doc(doc, path)
            if errors:
                schema_errors += 1
                for error in errors:
                    print(f"  {error}")
        if schema_errors:
            continue
        base_rows, cur_rows = _row_index(base), _row_index(cur)
        for label in sorted(set(base_rows) | set(cur_rows)):
            if label not in base_rows:
                print(f"  [new row]     {name}: {label}")
                continue
            if label not in cur_rows:
                print(f"  [missing row] {name}: {label}")
                continue
            b, c = base_rows[label], cur_rows[label]
            b_ns, c_ns = b["median_wall_ns"], c["median_wall_ns"]
            if b_ns > 0 and c_ns > 0:
                ratio = c_ns / b_ns
                if ratio > 1 + args.threshold:
                    regressions += 1
                    print(f"  [REGRESSION]  {name}: {label}: median wall "
                          f"{b_ns:.0f} -> {c_ns:.0f} ns ({ratio:.2f}x)")
                elif ratio < 1 - args.threshold:
                    print(f"  [improvement] {name}: {label}: median wall "
                          f"{b_ns:.0f} -> {c_ns:.0f} ns ({ratio:.2f}x)")
            for key in COUNTER_KEYS:
                bv, cv = b["counters"].get(key, 0), c["counters"].get(key, 0)
                if bv != cv:
                    print(f"  [counter]     {name}: {label}: {key} "
                          f"{bv} -> {cv}")
    if schema_errors:
        print(f"{schema_errors} schema error(s)")
        return 1
    if regressions:
        print(f"{regressions} wall-time regression(s) over "
              f"{args.threshold:.0%}")
        return 2
    print("no regressions")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    validate = sub.add_parser("validate", help="schema-check result files")
    validate.add_argument("paths", nargs="+",
                          help="BENCH_*.json files or directories")
    validate.set_defaults(func=cmd_validate)
    diff = sub.add_parser("diff", help="compare two result directories")
    diff.add_argument("baseline")
    diff.add_argument("current")
    diff.add_argument("--threshold", type=float, default=0.10,
                      help="relative wall-time change to flag (default 0.10)")
    diff.set_defaults(func=cmd_diff)
    args = parser.parse_args()
    sys.exit(args.func(args))


if __name__ == "__main__":
    main()
