#ifndef RELDIV_PARALLEL_NETWORK_H_
#define RELDIV_PARALLEL_NETWORK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"

namespace reldiv {

/// Interconnection-network accounting for the shared-nothing simulation
/// (§6). Local hand-offs (from == to) are free; every remote shipment
/// counts one message and its payload bytes. "Network activity can become a
/// bottleneck in a shared-nothing database machine" — these counters are
/// what the §6 benchmarks report.
class Interconnect {
 public:
  explicit Interconnect(size_t num_nodes)
      : num_nodes_(num_nodes), sent_matrix_(num_nodes * num_nodes, 0) {}

  /// Records a shipment of `bytes` payload from node `from` to node `to`.
  void Ship(size_t from, size_t to, uint64_t bytes) {
    RELDIV_DCHECK_LT(from, num_nodes_) << "shipment from an unknown node";
    RELDIV_DCHECK_LT(to, num_nodes_) << "shipment to an unknown node";
    if (from == to) return;
    messages_++;
    bytes_ += bytes;
    sent_matrix_[from * num_nodes_ + to] += bytes;
    if (trace_ != nullptr) {
      // Sender's timeline lane (tid = 1 + node_id; 0 is the query thread).
      trace_->Instant("ship", "network", static_cast<uint32_t>(1 + from),
                      {{"to", to}, {"bytes", bytes}});
    }
  }

  /// Broadcast accounting helper: `bytes` to every node except `from`.
  void Broadcast(size_t from, uint64_t bytes) {
    for (size_t to = 0; to < num_nodes_; ++to) Ship(from, to, bytes);
  }

  uint64_t messages() const { return messages_; }
  uint64_t bytes() const { return bytes_; }
  size_t num_nodes() const { return num_nodes_; }
  uint64_t bytes_between(size_t from, size_t to) const {
    return sent_matrix_[from * num_nodes_ + to];
  }

  void Reset() {
    messages_ = 0;
    bytes_ = 0;
    sent_matrix_.assign(sent_matrix_.size(), 0);
  }

  std::string ToString() const {
    return "messages=" + std::to_string(messages_) +
           " bytes=" + std::to_string(bytes_);
  }

  /// Attaches a span recorder: every remote shipment then emits an instant
  /// event on the sending node's timeline lane with destination and byte
  /// count. nullptr detaches. Must outlive the attachment.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

 private:
  size_t num_nodes_;
  TraceRecorder* trace_ = nullptr;
  uint64_t messages_ = 0;
  uint64_t bytes_ = 0;
  std::vector<uint64_t> sent_matrix_;
};

}  // namespace reldiv

#endif  // RELDIV_PARALLEL_NETWORK_H_
