#ifndef RELDIV_COMMON_ROW_CODEC_H_
#define RELDIV_COMMON_ROW_CODEC_H_

#include <string>

#include "common/result.h"
#include "common/schema.h"
#include "common/slice.h"
#include "common/tuple.h"

namespace reldiv {

/// Serializes tuples to the byte format stored in record files:
/// int64/double as 8 bytes little-endian, strings as a 4-byte length prefix
/// followed by the bytes. Encoding is schema-driven; decoding verifies that
/// the payload is consistent with the schema and returns Corruption
/// otherwise.
class RowCodec {
 public:
  explicit RowCodec(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Appends the encoding of `tuple` to `out`. InvalidArgument on a
  /// schema/tuple mismatch.
  Status Encode(const Tuple& tuple, std::string* out) const;

  /// Convenience wrapper returning a fresh buffer.
  Result<std::string> EncodeToString(const Tuple& tuple) const;

  /// Decodes one record payload into `tuple`.
  Status Decode(Slice payload, Tuple* tuple) const;

  /// Encoded size of `tuple` in bytes.
  Result<size_t> EncodedSize(const Tuple& tuple) const;

 private:
  Schema schema_;
};

}  // namespace reldiv

#endif  // RELDIV_COMMON_ROW_CODEC_H_
