# Empty compiler generated dependencies file for supplier_parts.
# This may be replaced when dependencies are built.
