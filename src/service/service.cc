#include "service/service.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/counters.h"
#include "common/metric_names.h"
#include "exec/exec_context.h"
#include "exec/scheduler.h"
#include "obs/telemetry.h"
#include "storage/memory_manager.h"

namespace reldiv {
namespace {

/// Tuples between cancellation polls on the direct (non-cached) drive loop.
constexpr uint64_t kCancelPollInterval = 64;

uint64_t ElapsedUs(std::chrono::steady_clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

/// Releases a global-pool grant on every exit path (including cancellation
/// unwinds) exactly once.
class GrantGuard {
 public:
  GrantGuard(MemoryPool* pool, size_t bytes) : pool_(pool), bytes_(bytes) {}
  ~GrantGuard() {
    if (pool_ != nullptr) pool_->Release(bytes_);
  }
  GrantGuard(const GrantGuard&) = delete;
  GrantGuard& operator=(const GrantGuard&) = delete;

 private:
  MemoryPool* pool_;
  size_t bytes_;
};

}  // namespace

DivisionService::DivisionService(Database* db, ServiceOptions options)
    : db_(db),
      options_(options),
      cache_(std::make_shared<QuotientCache>(options.cache_max_entries)) {
  if (db_->pool() != nullptr && options_.grant_timeout.count() > 0) {
    // Contending queries park on the pool condvar instead of failing or
    // spinning; see MemoryPool::set_wait_timeout.
    db_->pool()->set_wait_timeout(options_.grant_timeout);
  }
  if (options_.use_quotient_cache) {
    // The observer captures the cache by shared_ptr: the database may
    // outlive this service, and observers are never deregistered.
    std::shared_ptr<QuotientCache> cache = cache_;
    db_->AddUpdateObserver(
        [cache](const std::string& /*table*/, RecordStore* store,
                const Tuple& tuple, bool inserted) {
          cache->OnStoreUpdate(store, tuple, inserted);
        });
  }
}

void DivisionService::RegisterTenant(const std::string& tenant,
                                     TenantOptions options) {
  MutexLock lock(mu_);
  tenants_[tenant].options = options;
}

Result<std::shared_ptr<QueryTicket>> DivisionService::Submit(
    const std::string& tenant, QueryRequest request) {
  // QueryTicket's constructor is private to this friend, which make_shared
  // cannot reach; ownership transfers to the shared_ptr on the same line.
  std::shared_ptr<QueryTicket> ticket(
      // NOLINTNEXTLINE(reldiv/naked-new): private ctor, make_shared cannot
      new QueryTicket(tenant, std::move(request)));
  ticket->submit_time_ = std::chrono::steady_clock::now();
  size_t depth = 0;
  {
    MutexLock lock(mu_);
    TenantState& state = tenants_[tenant];  // auto-registers defaults
    if (state.queue.size() >= state.options.max_queue_depth) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      if (Telemetry::counting()) {
        MetricRegistry::Global()
            .FindOrCreateCounter(metric_names::kServiceAdmissionRejectsTotal,
                                 "tenant", tenant)
            ->Add(1);
      }
      return Status::ResourceExhausted(
          "tenant '" + tenant + "' queue full (" +
          std::to_string(state.options.max_queue_depth) + " queries)");
    }
    state.queue.push_back(ticket);
    depth = state.queue.size();
  }
  uint64_t high_water = queue_depth_high_water_.load(std::memory_order_relaxed);
  while (depth > high_water &&
         !queue_depth_high_water_.compare_exchange_weak(
             high_water, depth, std::memory_order_relaxed)) {
  }
  if (Telemetry::counting()) {
    MetricRegistry::Global()
        .FindOrCreateGauge(metric_names::kServiceQueueDepthHighWater)
        ->UpdateMax(depth);
  }
  return ticket;
}

std::vector<std::shared_ptr<QueryTicket>> DivisionService::AdmitWave() {
  std::vector<std::shared_ptr<QueryTicket>> wave;
  MutexLock lock(mu_);
  while (wave.size() < options_.max_concurrent) {
    int64_t total_weight = 0;
    TenantState* best = nullptr;
    for (auto& [name, state] : tenants_) {
      if (state.queue.empty()) continue;
      const int64_t weight =
          static_cast<int64_t>(std::max<uint64_t>(state.options.weight, 1));
      state.credit += weight;
      total_weight += weight;
      if (best == nullptr || state.credit > best->credit) best = &state;
    }
    if (best == nullptr) break;
    best->credit -= total_weight;
    admission_log_.push_back(wave.emplace_back(std::move(best->queue.front()))
                                 ->tenant());
    best->queue.pop_front();
  }
  return wave;
}

Status DivisionService::RunUntilIdle() {
  while (true) {
    std::vector<std::shared_ptr<QueryTicket>> wave = AdmitWave();
    if (wave.empty()) return Status::OK();
    const size_t dop = std::min(wave.size(), options_.max_concurrent);
    RELDIV_RETURN_NOT_OK(TaskScheduler::Global().ParallelFor(
        dop, wave.size(), [&wave, this](size_t i) {
          ExecuteOne(wave[i].get());
          return Status::OK();
        }));
  }
}

void DivisionService::ExecuteOne(QueryTicket* ticket) {
  const auto start = std::chrono::steady_clock::now();
  ticket->queue_wait_us_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          start - ticket->submit_time_)
          .count());
  const size_t now_active = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Telemetry::counting()) {
    MetricRegistry::Global()
        .FindOrCreateGauge(metric_names::kServiceActiveQueries)
        ->UpdateMax(now_active);
  }

  ticket->status_ = RunQuery(ticket);

  ticket->exec_us_ = ElapsedUs(start);
  active_.fetch_sub(1, std::memory_order_relaxed);
  queries_run_.fetch_add(1, std::memory_order_relaxed);
  if (ticket->status_.IsCancelled()) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  if (Telemetry::counting()) {
    MetricRegistry& registry = MetricRegistry::Global();
    registry
        .FindOrCreateCounter(metric_names::kServiceQueriesTotal, "tenant",
                             ticket->tenant_)
        ->Add(1);
    registry
        .FindOrCreateHistogram(metric_names::kServiceQueueWaitMicros, "tenant",
                               ticket->tenant_)
        ->Record(ticket->queue_wait_us_);
    registry
        .FindOrCreateHistogram(metric_names::kServiceQueryLatencyMicros,
                               "tenant", ticket->tenant_)
        ->Record(ticket->exec_us_);
    if (ticket->status_.IsCancelled()) {
      registry.FindOrCreateCounter(metric_names::kServiceCancelledTotal)
          ->Add(1);
    }
  }
  ticket->done_.store(true, std::memory_order_release);
}

Status DivisionService::RunQuery(QueryTicket* ticket) {
  if (ticket->cancel_requested()) {
    return Status::Cancelled("query cancelled before execution");
  }

  // Broker the per-query grant against the global pool. The grant is pure
  // admission accounting: the query's own allocations go through a private
  // pool of exactly the grant size, so a query can never draw more from the
  // shared budget than it was granted.
  MemoryPool* global_pool = db_->pool();
  std::optional<GrantGuard> grant;
  std::optional<MemoryPool> local_pool;
  if (global_pool != nullptr) {
    Status granted = global_pool->ReserveWithDeadline(options_.grant_bytes,
                                                      options_.grant_timeout);
    if (!granted.ok()) {
      if (granted.IsResourceExhausted()) {
        grant_timeouts_.fetch_add(1, std::memory_order_relaxed);
        if (Telemetry::counting()) {
          MetricRegistry::Global()
              .FindOrCreateCounter(metric_names::kServiceGrantTimeoutsTotal)
              ->Add(1);
        }
      }
      return granted;
    }
    grant.emplace(global_pool, options_.grant_bytes);
    local_pool.emplace(options_.grant_bytes);
  }

  CpuCounters counters;
  ExecContext ctx(db_->disk(), db_->buffer_manager(),
                  local_pool.has_value() ? &*local_pool : nullptr, &counters);
  ctx.set_cancellation_flag(&ticket->cancel_);

  if (options_.use_quotient_cache && !ticket->request_.bypass_cache) {
    RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved,
                            ResolveDivision(ticket->request_.query));
    bool hit = false;
    RELDIV_ASSIGN_OR_RETURN(ticket->quotient_,
                            cache_->GetOrCompute(resolved, &ctx, &hit));
    ticket->cache_hit_ = hit;
    return Status::OK();
  }

  RELDIV_ASSIGN_OR_RETURN(
      std::unique_ptr<Operator> plan,
      MakeDivisionPlan(&ctx, ticket->request_.query, ticket->request_.algorithm,
                       ticket->request_.options));
  RELDIV_RETURN_NOT_OK(plan->Open());
  std::vector<Tuple> quotient;
  uint64_t emitted = 0;
  Status drive = Status::OK();
  while (true) {
    if (emitted % kCancelPollInterval == 0) {
      drive = ctx.CheckCancelled();
      if (!drive.ok()) break;
    }
    Tuple tuple;
    bool has = false;
    drive = plan->Next(&tuple, &has);
    if (!drive.ok() || !has) break;
    quotient.push_back(std::move(tuple));
    emitted++;
  }
  // Close on every path: the cancellation unwind must still run operator
  // teardown so arenas reset and reservations release.
  Status closed = plan->Close();
  RELDIV_RETURN_NOT_OK(drive);
  RELDIV_RETURN_NOT_OK(closed);
  ticket->quotient_ = std::move(quotient);
  return Status::OK();
}

}  // namespace reldiv
