// Tests for the morsel scheduler (exec/scheduler.h): exactly-once morsel
// dispatch, the deterministic serial fallback, first-error-wins Status
// propagation with prompt draining, inline nesting, lane reporting, and
// work stealing (an idle lane must take over a busy lane's queued morsels).
// The multi-lane cases are the TSan regression surface for the intra-node
// parallelism work; tools/check_all.sh runs this binary under the tsan
// preset at several RELDIV_THREADS values.

#include "exec/scheduler.h"

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace reldiv {
namespace {

TEST(TaskSchedulerTest, LaneZeroOutsideAnyRegion) {
  EXPECT_EQ(TaskScheduler::CurrentLane(), 0u);
  EXPECT_FALSE(TaskScheduler::InParallelRegion());
  EXPECT_GE(TaskScheduler::DefaultDop(), 1u);
  EXPECT_LE(TaskScheduler::DefaultDop(), TaskScheduler::kMaxLanes);
}

TEST(TaskSchedulerTest, EmptyRegionIsANoOp) {
  ASSERT_OK(TaskScheduler::Global().ParallelFor(
      4, 0, [](size_t) -> Status { return Status::Internal("never"); }));
}

TEST(TaskSchedulerTest, SerialFallbackRunsInMorselOrder) {
  std::vector<size_t> order;
  ASSERT_OK(
      TaskScheduler::Global().ParallelFor(1, 16, [&](size_t m) -> Status {
        order.push_back(m);
        EXPECT_EQ(TaskScheduler::CurrentLane(), 0u);
        EXPECT_FALSE(TaskScheduler::InParallelRegion());
        return Status::OK();
      }));
  std::vector<size_t> expected(16);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(TaskSchedulerTest, SerialFallbackStopsAtTheFirstError) {
  std::vector<size_t> executed;
  Status status =
      TaskScheduler::Global().ParallelFor(1, 10, [&](size_t m) -> Status {
        executed.push_back(m);
        if (m == 3) return Status::Internal("morsel 3 failed");
        return Status::OK();
      });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(executed, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(TaskSchedulerTest, EveryMorselRunsExactlyOnce) {
  for (size_t dop : {2u, 4u, 8u}) {
    constexpr size_t kMorsels = 500;
    std::vector<std::atomic<int>> runs(kMorsels);
    std::atomic<size_t> total{0};
    ASSERT_OK(TaskScheduler::Global().ParallelFor(
        dop, kMorsels, [&](size_t m) -> Status {
          runs[m].fetch_add(1, std::memory_order_relaxed);
          total.fetch_add(1, std::memory_order_relaxed);
          EXPECT_LT(TaskScheduler::CurrentLane(), dop);
          EXPECT_TRUE(TaskScheduler::InParallelRegion());
          return Status::OK();
        }));
    EXPECT_EQ(total.load(), kMorsels) << "dop " << dop;
    for (size_t m = 0; m < kMorsels; ++m) {
      ASSERT_EQ(runs[m].load(), 1) << "morsel " << m << " at dop " << dop;
    }
    EXPECT_FALSE(TaskScheduler::InParallelRegion());
  }
}

TEST(TaskSchedulerTest, PoolGrowsToServeWideRegionsAndIsShared) {
  ASSERT_OK(TaskScheduler::Global().ParallelFor(
      8, 64, [](size_t) -> Status { return Status::OK(); }));
  // The caller is lane 0, so a dop-8 region needs 7 pool workers; the pool
  // never exceeds kMaxLanes - 1 threads no matter how many regions ran.
  EXPECT_GE(TaskScheduler::Global().num_workers(), 7u);
  EXPECT_LE(TaskScheduler::Global().num_workers(),
            TaskScheduler::kMaxLanes - 1);
}

TEST(TaskSchedulerTest, IdleLanesStealFromABusyLane) {
  // Morsels start round-robin: lane 0 owns {0, 2, 4, 6}, lane 1 owns
  // {1, 3, 5, 7}. Morsel 0 holds lane 0 hostage until every other morsel —
  // including 2, 4, 6 queued behind it on lane 0's own deque — has run.
  // Only stealing by lane 1 can satisfy that; without it this test hangs.
  constexpr size_t kMorsels = 8;
  std::atomic<size_t> done{0};
  ASSERT_OK(TaskScheduler::Global().ParallelFor(
      2, kMorsels, [&](size_t m) -> Status {
        if (m == 0) {
          while (done.load(std::memory_order_acquire) < kMorsels - 1) {
            std::this_thread::yield();
          }
        }
        done.fetch_add(1, std::memory_order_acq_rel);
        return Status::OK();
      }));
  EXPECT_EQ(done.load(), kMorsels);
}

TEST(TaskSchedulerTest, FirstErrorWinsAndTheRegionDrainsPromptly) {
  constexpr size_t kMorsels = 300;
  std::vector<std::atomic<int>> runs(kMorsels);
  Status status = TaskScheduler::Global().ParallelFor(
      4, kMorsels, [&](size_t m) -> Status {
        runs[m].fetch_add(1, std::memory_order_relaxed);
        if (m == 123) return Status::Internal("morsel 123 failed");
        return Status::OK();
      });
  // A single failing morsel makes "first error" exact: its Status comes
  // back verbatim.
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("morsel 123"), std::string::npos)
      << status.ToString();
  // No morsel ran twice, and the failing one did run.
  for (size_t m = 0; m < kMorsels; ++m) {
    ASSERT_LE(runs[m].load(), 1) << "morsel " << m;
  }
  EXPECT_EQ(runs[123].load(), 1);

  // The failed region left no residue: the next region runs to completion.
  std::atomic<size_t> after{0};
  ASSERT_OK(TaskScheduler::Global().ParallelFor(
      4, 100, [&](size_t) -> Status {
        after.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }));
  EXPECT_EQ(after.load(), 100u);
}

TEST(TaskSchedulerTest, NestedRegionsRunInlineOnTheCallerLane) {
  std::atomic<size_t> inner_total{0};
  ASSERT_OK(
      TaskScheduler::Global().ParallelFor(4, 8, [&](size_t) -> Status {
        const size_t lane = TaskScheduler::CurrentLane();
        RELDIV_RETURN_NOT_OK(TaskScheduler::Global().ParallelFor(
            4, 5, [&, lane](size_t) -> Status {
              EXPECT_EQ(TaskScheduler::CurrentLane(), lane);
              inner_total.fetch_add(1, std::memory_order_relaxed);
              return Status::OK();
            }));
        return Status::OK();
      }));
  EXPECT_EQ(inner_total.load(), 40u);
}

TEST(TaskSchedulerTest, DopIsClampedToTheMorselCount) {
  // dop beyond num_morsels or kMaxLanes must not allocate phantom lanes.
  std::atomic<size_t> total{0};
  ASSERT_OK(TaskScheduler::Global().ParallelFor(
      64, 3, [&](size_t) -> Status {
        EXPECT_LT(TaskScheduler::CurrentLane(), 3u);
        total.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      }));
  EXPECT_EQ(total.load(), 3u);
}

}  // namespace
}  // namespace reldiv
