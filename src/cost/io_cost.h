#ifndef RELDIV_COST_IO_COST_H_
#define RELDIV_COST_IO_COST_H_

#include <string>

#include "common/counters.h"
#include "storage/disk.h"

namespace reldiv {

/// Table 3: the weights used to convert the file system's I/O statistics
/// into milliseconds in the experimental results (§5.1: "the I/O cost was
/// calculated based on statistics collected by our file system").
struct ExperimentalCostWeights {
  double seek_ms = 20;             ///< physical seek on device
  double latency_ms = 8;           ///< rotational latency per transfer
  double transfer_ms_per_kb = 0.5; ///< transfer time per KByte
  double cpu_ms_per_transfer = 2;  ///< CPU cost per transfer
};

/// Milliseconds of simulated I/O implied by `stats` under `weights`.
double IoCostMs(const DiskStats& stats,
                const ExperimentalCostWeights& weights = {});

/// One experimental measurement in the paper's reporting scheme: CPU cost of
/// the algorithm code plus I/O cost computed from file-system statistics.
/// `cpu_ms` is derived from measured operation counts and the Table 1 unit
/// times (machine-independent); `wall_ms` is the actual elapsed time on the
/// host for reference.
struct ExperimentalCost {
  double cpu_ms = 0;
  double io_ms = 0;
  double wall_ms = 0;
  DiskStats io_stats;
  CpuCounters cpu_counters;

  double total_ms() const { return cpu_ms + io_ms; }
  std::string ToString() const;
};

}  // namespace reldiv

#endif  // RELDIV_COST_IO_COST_H_
