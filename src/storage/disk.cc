#include "storage/disk.h"

#include <cstring>

#include "common/metric_names.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "testing/failpoint.h"

namespace reldiv {

std::string DiskStats::ToString() const {
  return "transfers=" + std::to_string(transfers) +
         " seeks=" + std::to_string(seeks) +
         " kb=" + std::to_string(sectors_transferred) +
         " reads=" + std::to_string(read_transfers) +
         " writes=" + std::to_string(write_transfers);
}

std::string DiskStats::ToJson() const {
  const auto field = [](const char* name, uint64_t value) {
    return "\"" + std::string(name) + "\":" + std::to_string(value);
  };
  return "{" + field(metric_names::kTransfers, transfers) + "," +
         field(metric_names::kSeeks, seeks) + "," +
         field(metric_names::kKbytes, sectors_transferred) + "," +
         field(metric_names::kReads, read_transfers) + "," +
         field(metric_names::kWrites, write_transfers) + "}";
}

SimDisk::SimDisk() : backing_(Backing::kMemory) {}

SimDisk::SimDisk(Passkey, std::FILE* file, std::string path)
    : backing_(Backing::kFile), file_(file), path_(std::move(path)) {}

Result<std::unique_ptr<SimDisk>> SimDisk::OpenFileBacked(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w+b");
  if (f == nullptr) {
    return Status::IOError("cannot open disk backing file '" + path + "'");
  }
  return std::make_unique<SimDisk>(Passkey{}, f, path);
}

SimDisk::~SimDisk() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove(path_.c_str());
  }
}

uint64_t SimDisk::AllocateSectors(uint64_t count) {
  MutexLock lock(mu_);
  const uint64_t first = num_sectors_;
  num_sectors_ += count;
  if (backing_ == Backing::kMemory) {
    const uint64_t needed_chunks =
        (num_sectors_ + kSectorsPerChunk - 1) / kSectorsPerChunk;
    while (chunks_.size() < needed_chunks) {
      chunks_.emplace_back(kSectorsPerChunk * kSectorSize, 0);
    }
  }
  return first;
}

Status SimDisk::CheckRange(uint64_t sector, uint64_t count) const {
  if (count == 0) return Status::InvalidArgument("zero-sector transfer");
  if (sector + count > num_sectors_) {
    return Status::InvalidArgument(
        "transfer beyond end of disk: sector " + std::to_string(sector) +
        " count " + std::to_string(count) + " of " +
        std::to_string(num_sectors_));
  }
  return Status::OK();
}

void SimDisk::Account(uint64_t sector, uint64_t count, bool is_read) {
  // Process-wide telemetry beside the per-disk stats: counters under
  // kCounting (relaxed adds), the transfer-size histogram only under
  // kSampling (overhead contract, DESIGN.md §14).
  if (Telemetry::counting()) {
    static TelemetryCounter* transfers_total =
        MetricRegistry::Global().FindOrCreateCounter(
            metric_names::kDiskTransfersTotal);
    transfers_total->Add(1);
    if (!arm_valid_ || sector != arm_position_) {
      static TelemetryCounter* seeks_total =
          MetricRegistry::Global().FindOrCreateCounter(
              metric_names::kDiskSeeksTotal);
      seeks_total->Add(1);
    }
    if (Telemetry::sampling()) {
      static Histogram* transfer_sectors =
          MetricRegistry::Global().FindOrCreateHistogram(
              metric_names::kDiskTransferSectors);
      transfer_sectors->Record(count);
    }
  }
  stats_.transfers++;
  if (is_read) {
    stats_.read_transfers++;
  } else {
    stats_.write_transfers++;
  }
  stats_.sectors_transferred += count;
  const bool seek = !arm_valid_ || sector != arm_position_;
  if (seek) stats_.seeks++;
  arm_position_ = sector + count;
  arm_valid_ = true;
  if (trace_ != nullptr) {
    trace_->Instant(is_read ? "disk-read" : "disk-write", "disk", /*tid=*/0,
                    {{"sector", sector},
                     {"sectors", count},
                     {"seek", seek ? 1U : 0U}});
  }
}

Status SimDisk::Read(uint64_t sector, uint64_t count, char* dst) {
  // One lock spans range check, failpoints, accounting, and the copy: the
  // seek failpoint and the seek counter must observe the same arm position,
  // and a transfer must never be torn between them.
  MutexLock lock(mu_);
  RELDIV_RETURN_NOT_OK(CheckRange(sector, count));
  RELDIV_FAILPOINT("sim_disk/read");
  if (!arm_valid_ || sector != arm_position_) {
    RELDIV_FAILPOINT("sim_disk/seek");
  }
  Account(sector, count, /*is_read=*/true);
  if (backing_ == Backing::kMemory) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t s = sector + i;
      const std::vector<char>& chunk = chunks_[s / kSectorsPerChunk];
      std::memcpy(dst + i * kSectorSize,
                  chunk.data() + (s % kSectorsPerChunk) * kSectorSize,
                  kSectorSize);
    }
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(sector * kSectorSize), SEEK_SET) !=
      0) {
    return Status::IOError("fseek failed");
  }
  const size_t want = count * kSectorSize;
  const size_t got = std::fread(dst, 1, want, file_);
  // Sectors allocated but never written read back as zeros.
  if (got < want) std::memset(dst + got, 0, want - got);
  return Status::OK();
}

Status SimDisk::Write(uint64_t sector, uint64_t count, const char* src) {
  MutexLock lock(mu_);
  RELDIV_RETURN_NOT_OK(CheckRange(sector, count));
  RELDIV_FAILPOINT("sim_disk/write");
  if (!arm_valid_ || sector != arm_position_) {
    RELDIV_FAILPOINT("sim_disk/seek");
  }
  Account(sector, count, /*is_read=*/false);
  if (backing_ == Backing::kMemory) {
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t s = sector + i;
      std::vector<char>& chunk = chunks_[s / kSectorsPerChunk];
      std::memcpy(chunk.data() + (s % kSectorsPerChunk) * kSectorSize,
                  src + i * kSectorSize, kSectorSize);
    }
    return Status::OK();
  }
  if (std::fseek(file_, static_cast<long>(sector * kSectorSize), SEEK_SET) !=
      0) {
    return Status::IOError("fseek failed");
  }
  if (std::fwrite(src, 1, count * kSectorSize, file_) !=
      count * kSectorSize) {
    return Status::IOError("fwrite failed");
  }
  return Status::OK();
}

}  // namespace reldiv
