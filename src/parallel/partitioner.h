#ifndef RELDIV_PARALLEL_PARTITIONER_H_
#define RELDIV_PARALLEL_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/tuple.h"

namespace reldiv {

/// Hash partitioning of a tuple batch on `attrs` into `num_partitions`
/// disjoint clusters (§3.4 / §6). Deterministic: the same tuple always
/// lands in the same cluster, which both overflow handling and
/// shared-nothing redistribution rely on.
std::vector<std::vector<Tuple>> HashPartition(
    const std::vector<Tuple>& tuples, const std::vector<size_t>& attrs,
    size_t num_partitions);

/// Partition index of one tuple under the same function.
size_t HashPartitionOf(const Tuple& tuple, const std::vector<size_t>& attrs,
                       size_t num_partitions);

/// Range partitioning on a single int64 column given ascending split points:
/// tuple goes to the first partition whose split point exceeds its value
/// (last partition is unbounded). splits.size() + 1 partitions result.
std::vector<std::vector<Tuple>> RangePartition(
    const std::vector<Tuple>& tuples, size_t attr,
    const std::vector<int64_t>& splits);

/// Round-robin split used to model the initial declustered placement of a
/// relation across the nodes of a shared-nothing machine.
std::vector<std::vector<Tuple>> RoundRobinSplit(
    const std::vector<Tuple>& tuples, size_t num_partitions);

}  // namespace reldiv

#endif  // RELDIV_PARALLEL_PARTITIONER_H_
