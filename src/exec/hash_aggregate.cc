#include "exec/hash_aggregate.h"

namespace reldiv {

HashAggregateOperator::HashAggregateOperator(
    ExecContext* ctx, std::unique_ptr<Operator> child,
    std::vector<size_t> group_indices, std::vector<AggSpec> aggs,
    uint64_t expected_groups)
    : ctx_(ctx),
      child_(std::move(child)),
      group_indices_(std::move(group_indices)),
      aggs_(std::move(aggs)),
      expected_groups_(expected_groups) {
  init_status_ = BuildSchema();
}

Status HashAggregateOperator::BuildSchema() {
  std::vector<Field> fields;
  for (size_t idx : group_indices_) {
    fields.push_back(child_->output_schema().field(idx));
  }
  RELDIV_ASSIGN_OR_RETURN(std::vector<Field> agg_fields,
                          AggOutputFields(child_->output_schema(), aggs_));
  for (Field& f : agg_fields) fields.push_back(std::move(f));
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

Status HashAggregateOperator::Open() {
  RELDIV_RETURN_NOT_OK(init_status_);
  arena_ = std::make_unique<Arena>(ctx_->pool());
  // Stored tuples are the group columns, so keys are 0..n-1 on the stored
  // side.
  std::vector<size_t> stored_keys(group_indices_.size());
  for (size_t i = 0; i < stored_keys.size(); ++i) stored_keys[i] = i;
  const size_t buckets = expected_groups_ == 0
                             ? 1024
                             : TupleHashTable::BucketsFor(expected_groups_);
  table_ = std::make_unique<TupleHashTable>(ctx_, arena_.get(),
                                            std::move(stored_keys), buckets);
  states_.clear();
  group_order_.clear();
  emit_pos_ = 0;

  RELDIV_RETURN_NOT_OK(child_->Open());
  if (input_batch_.capacity() != ctx_->batch_capacity()) {
    input_batch_.ResetCapacity(ctx_->batch_capacity(), ctx_->pool());
  }
  // Batched, staged build: all probe hashes of a batch first (each counted
  // exactly as FindOrInsert's hash), bucket and chain-head prefetches next,
  // chain walks last. Hash values and Comp counts per tuple are identical to
  // the tuple-at-a-time FindOrInsert — the probe columns equal the stored
  // group key — so bucket order (the output order) is unchanged. The group
  // tuple is now materialized only on a miss.
  bool has_more = true;
  while (has_more) {
    RELDIV_RETURN_NOT_OK(child_->NextBatch(&input_batch_, &has_more));
    const size_t n = input_batch_.size();
    hashes_.resize(n);
    for (size_t i = 0; i < n; ++i) {
      hashes_[i] = table_->ProbeHash(input_batch_.tuple(i), group_indices_);
      table_->PrefetchBucket(hashes_[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      TupleHashTable::Prefetch(table_->BucketHead(hashes_[i]));
    }
    for (size_t i = 0; i < n; ++i) {
      const Tuple& tuple = input_batch_.tuple(i);
      bool inserted = false;
      RELDIV_ASSIGN_OR_RETURN(
          TupleHashTable::Entry * entry,
          table_->FindOrInsertPrehashed(
              tuple, group_indices_, hashes_[i],
              [&] { return tuple.Project(group_indices_); }, &inserted));
      if (inserted) {
        entry->num = states_.size();
        states_.emplace_back(aggs_);
        group_order_.push_back(entry->tuple);
      }
      states_[entry->num].Update(aggs_, tuple);
    }
  }
  RELDIV_RETURN_NOT_OK(child_->Close());

  // Freeze emit order as (group tuple, state) pairs in bucket order.
  emit_entries_.clear();
  table_->ForEach([this](TupleHashTable::Entry* entry) {
    emit_entries_.emplace_back(entry->tuple, entry->num);
    return true;
  });
  return Status::OK();
}

Status HashAggregateOperator::Next(Tuple* tuple, bool* has_next) {
  if (emit_pos_ >= emit_entries_.size()) {
    *has_next = false;
    return Status::OK();
  }
  const auto& [group, state_index] = emit_entries_[emit_pos_++];
  *tuple = *group;
  RELDIV_RETURN_NOT_OK(states_[state_index].Finish(aggs_, tuple));
  *has_next = true;
  return Status::OK();
}

Status HashAggregateOperator::Close() {
  table_.reset();
  arena_.reset();
  states_.clear();
  emit_entries_.clear();
  return Status::OK();
}

}  // namespace reldiv
