#ifndef RELDIV_STORAGE_EXTENT_FILE_H_
#define RELDIV_STORAGE_EXTENT_FILE_H_

#include <cstdint>
#include <vector>

#include "common/config.h"
#include "common/result.h"
#include "storage/disk.h"

namespace reldiv {

/// Extent-based file (§5.1): pages are allocated in physically contiguous
/// extents so that a sequential scan over the file produces mostly seek-free
/// transfers on the simulated disk. Page numbers exposed to clients are
/// file-local (0..num_pages), mapped to disk-global pages internally.
class ExtentFile {
 public:
  explicit ExtentFile(SimDisk* disk, uint32_t extent_pages = kExtentPages)
      : disk_(disk), extent_pages_(extent_pages) {}

  ExtentFile(const ExtentFile&) = delete;
  ExtentFile& operator=(const ExtentFile&) = delete;
  ExtentFile(ExtentFile&&) = default;
  ExtentFile& operator=(ExtentFile&&) = default;

  /// Appends one page to the file (allocating a new extent when the current
  /// one is full) and returns its file-local page number.
  uint64_t AllocatePage();

  /// Disk-global page number of file-local page `i`.
  Result<uint64_t> GlobalPage(uint64_t i) const;

  uint64_t num_pages() const { return num_pages_; }
  size_t num_extents() const { return extents_.size(); }
  SimDisk* disk() const { return disk_; }

 private:
  struct Extent {
    uint64_t first_page;  // disk-global
    uint32_t pages_used;
    uint32_t pages_capacity;
  };

  SimDisk* disk_;
  uint32_t extent_pages_;
  uint64_t num_pages_ = 0;
  std::vector<Extent> extents_;
};

}  // namespace reldiv

#endif  // RELDIV_STORAGE_EXTENT_FILE_H_
