#ifndef RELDIV_EXEC_OPERATOR_H_
#define RELDIV_EXEC_OPERATOR_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/schema.h"
#include "common/tuple.h"
#include "exec/batch.h"

namespace reldiv {

/// Named numeric gauges exported by an operator for the observability layer
/// (obs/metrics.h): algorithm-specific facts such as hash-division's bitmap
/// fill ratio, a sort's run count, or a partitioned operator's phase count.
using GaugeList = std::vector<std::pair<std::string, double>>;

/// Demand-driven iterator interface implemented by every relational algebra
/// operator (§5.1: "all relational algebra operators are implemented as
/// iterators, i.e., they support a simple open-next-close protocol").
///
/// The protocol exists at two granularities that may be mixed freely within
/// one plan:
///
///  - Tuple at a time: `Next(tuple, has_next)`.
///  - Batch at a time: `NextBatch(batch, has_more)` moves up to
///    `batch->capacity()` tuples per call, amortizing virtual dispatch and
///    reusing the batch's tuple slots.
///
/// Every operator supports both. Tuple-at-a-time operators inherit the base
/// NextBatch() adapter, which loops Next(); batch-native operators
/// (IsBatchNative() == true) implement NextBatch() directly and serve Next()
/// through a thin adapter over their own batches (TupleAdapter below), so
/// the two entry points always observe the same stream and bump the same
/// cost counters.
///
/// Contract — end-of-stream rules are defined HERE and nowhere else:
///
///  - Open() before any Next()/NextBatch(); Close() releases resources and
///    may be called at most once after Open(); a closed operator may be
///    re-Opened and then replays its stream from the start.
///  - Next() sets `*has_next = false` exactly once, at end of stream.
///    Next() must NOT be called again after it has reported end-of-stream.
///  - NextBatch() clears `*batch`, fills at most `batch->capacity()` tuples,
///    and sets `*has_more = false` when the stream is exhausted. The final
///    batch may be partially filled or empty; once `*has_more` is false,
///    NextBatch() must NOT be called again. A true `*has_more` makes no
///    promise that the next call yields tuples, only that calling is legal.
///  - Within one Open()/Close() cycle a plan must be drained through ONE of
///    the two entry points, not both interleaved.
class Operator {
 public:
  virtual ~Operator() = default;

  virtual const Schema& output_schema() const = 0;
  // Status is a [[nodiscard]] class, so these are enforced at every call
  // site already; the explicit attributes document the protocol's intent
  // at its definition point.
  [[nodiscard]] virtual Status Open() = 0;
  [[nodiscard]] virtual Status Next(Tuple* tuple, bool* has_next) = 0;

  /// Batch-at-a-time pull. The base implementation adapts Next(); batch-
  /// native operators override it. See the class comment for the contract.
  [[nodiscard]] virtual Status NextBatch(TupleBatch* batch, bool* has_more);

  /// True when this operator and its entire input pipeline produce batches
  /// natively, i.e. no tuple-at-a-time adapter runs anywhere underneath.
  /// The physical planner and the drain helpers use this to report/select
  /// fully vectorized pipelines; correctness never depends on it.
  virtual bool IsBatchNative() const { return false; }

  /// Observability hook: appends algorithm-specific gauges (hash-table fill,
  /// spill/run counts, early-output hits, peak memory) to `gauges`. Called
  /// by the profiling wrapper while the operator is still open — i.e. before
  /// Close() releases the state the gauges describe. Pure pass-through
  /// operators forward to their child; the default exports nothing.
  virtual void ExportGauges(GaugeList* gauges) const { (void)gauges; }

  [[nodiscard]] virtual Status Close() = 0;
};

/// Turns a batch-native operator's NextBatch() stream back into the
/// single-tuple protocol. Owning operators embed one, call Reset() from
/// Open(), and implement Next() as `adapter_.Next(this, tuple, has_next)`.
class TupleAdapter {
 public:
  explicit TupleAdapter(size_t capacity = TupleBatch::kDefaultCapacity)
      : batch_(capacity) {}

  void Reset() {
    batch_.Clear();
    pos_ = 0;
    done_ = false;
  }

  /// Reset() re-dimensioning the internal batch, so owners can honor the
  /// session's ExecContext::batch_capacity() at Open() time. The adapter's
  /// batch size is observable through the storage layer (how far a scan
  /// reads ahead of its consumer), so it must follow the session knob.
  void Reset(size_t capacity) {
    if (capacity != batch_.capacity()) batch_.ResetCapacity(capacity);
    Reset();
  }

  Status Next(Operator* op, Tuple* tuple, bool* has_next) {
    while (pos_ >= batch_.size()) {
      if (done_) {
        *has_next = false;
        return Status::OK();
      }
      bool has_more = false;
      RELDIV_RETURN_NOT_OK(op->NextBatch(&batch_, &has_more));
      done_ = !has_more;
      pos_ = 0;
    }
    *tuple = std::move(batch_.tuple(pos_++));
    *has_next = true;
    return Status::OK();
  }

 private:
  TupleBatch batch_;
  size_t pos_ = 0;
  bool done_ = false;
};

/// Drains `op` (Open/NextBatch*/Close) into a vector. Routes through the
/// batch protocol so every drain exercises the batch path — native batches
/// for vectorized operators, the base adapter for tuple-at-a-time ones.
/// `batch_capacity` sets the drain's unit of work.
Result<std::vector<Tuple>> CollectAll(
    Operator* op, size_t batch_capacity = TupleBatch::kDefaultCapacity);

/// Tuple-at-a-time drain (Open/Next*/Close); kept for contract tests that
/// compare the two protocols against each other.
Result<std::vector<Tuple>> CollectAllTupleAtATime(Operator* op);

}  // namespace reldiv

#endif  // RELDIV_EXEC_OPERATOR_H_
