#include "exec/exchange.h"

#include <chrono>

#include "common/check.h"
#include "common/metric_names.h"
#include "common/mutex.h"
#include "exec/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parallel/partitioner.h"

namespace reldiv {

namespace {

/// Opens, drains (batch protocol), and closes one fragment pipeline,
/// appending its output to `out`. The fragment cleans up after itself on
/// both paths, so a failing sibling never leaks this fragment's batches.
Status DrainFragment(Operator* op, ExecContext* ctx, std::vector<Tuple>* out) {
  RELDIV_RETURN_NOT_OK(op->Open());
  TupleBatch batch(ctx->batch_capacity());
  bool has_more = true;
  Status status;
  while (has_more) {
    status = op->NextBatch(&batch, &has_more);
    if (!status.ok()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      out->push_back(std::move(batch.tuple(i)));
    }
  }
  const Status close = op->Close();
  return status.ok() ? close : status;
}

}  // namespace

FragmentContexts::FragmentContexts(ExecContext* parent, size_t num_fragments)
    : counters_(num_fragments) {
  contexts_.reserve(num_fragments);
  for (size_t i = 0; i < num_fragments; ++i) {
    auto ctx = std::make_unique<ExecContext>(
        parent->disk(), parent->buffer_manager(), parent->pool(),
        &counters_[i]);
    ctx->set_sort_space_bytes(parent->sort_space_bytes());
    ctx->set_hash_memory_bytes(parent->hash_memory_bytes());
    ctx->set_batch_capacity(parent->batch_capacity());
    ctx->set_contract_checks(parent->contract_checks());
    // Profiling stays off in fragments: their work reports through the
    // parent plan's lane nodes, not as free-standing profile roots.
    if (parent->trace() != nullptr) ctx->set_trace(parent->trace());
    // Nested parallel regions run inline (exec/scheduler.h); making the
    // fragment context serial keeps dop-aware operators below from even
    // trying.
    ctx->set_dop(1);
    contexts_.push_back(std::move(ctx));
  }
}

FragmentContexts::~FragmentContexts() = default;

void FragmentContexts::MergeInto(ExecContext* parent) {
  RELDIV_DCHECK(!merged_) << "FragmentContexts::MergeInto called twice";
  merged_ = true;
  for (size_t i = 0; i < contexts_.size(); ++i) {
    *parent->counters() += counters_[i];
    // Fold the fragment's sub-page Move remainder through the parent's
    // accumulator in fragment order — reproduces the serial fold exactly.
    parent->CountMoveBytes(contexts_[i]->move_remainder_bytes());
  }
}

ExchangeOperator::ExchangeOperator(ExecContext* ctx, Schema schema,
                                   size_t num_fragments,
                                   FragmentFactory factory, GatherOrder order,
                                   std::string label)
    : ctx_(ctx),
      schema_(std::move(schema)),
      num_fragments_(num_fragments == 0 ? 1 : num_fragments),
      factory_(std::move(factory)),
      order_(order),
      label_(std::move(label)) {
  if (ctx_->profiling() && ctx_->profile() != nullptr) {
    QueryProfile* profile = ctx_->profile();
    lane_nodes_.reserve(num_fragments_);
    for (size_t f = 0; f < num_fragments_; ++f) {
      // Mark() = adopt nothing: lane nodes are leaves; the MaybeProfile
      // wrapper around this exchange adopts them (and any input subtree)
      // as its children.
      lane_nodes_.push_back(profile->CreateNode(
          label_ + ".lane[" + std::to_string(f) + "]", profile->Mark()));
    }
  }
}

Status ExchangeOperator::Open() {
  results_.clear();
  emit_pos_ = 0;
  return RunFragments();
}

Status ExchangeOperator::RunFragments() {
  const size_t n = num_fragments_;
  FragmentContexts fragments(ctx_, n);
  std::vector<std::vector<Tuple>> buffers(n);
  std::vector<size_t> completion;
  completion.reserve(n);
  // Guards `completion` across fragment lambdas. Function-local, so it
  // cannot carry a GUARDED_BY annotation (those attach to members); the
  // analyzer suppression records that.
  Mutex completion_mu;  // NOLINT(reldiv/mutex-guarded-by): local capability guarding `completion`; GUARDED_BY attaches to members only

  const size_t dop = std::min(ctx_->dop(), n);
  last_dop_ = dop == 0 ? 1 : dop;

  Status status = TaskScheduler::Global().ParallelFor(
      dop, n, [&](size_t f) -> Status {
        ExecContext* fc = fragments.fragment(f);
        const auto wall_start = std::chrono::steady_clock::now();
        TraceRecorder* trace = fc->trace();
        const uint64_t trace_start = trace != nullptr ? trace->NowMicros() : 0;

        RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Operator> op,
                                factory_(f, fc));
        const Status drained = DrainFragment(op.get(), fc, &buffers[f]);

        const size_t lane = TaskScheduler::CurrentLane();
        const uint64_t wall_ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - wall_start)
                .count());
        if (f < lane_nodes_.size()) {
          // Exactly one fragment writes each lane node, so no lock is
          // needed; the node's counters are the fragment's, making the
          // exchange's self_cpu the gather overhead.
          OperatorMetrics& m = lane_nodes_[f]->metrics();
          m.opens += 1;
          m.closes += 1;
          m.next_ns += wall_ns;
          m.tuples_out += buffers[f].size();
          m.cpu += fragments.counters(f);
          m.gauges = {{"scheduler_lane", static_cast<double>(lane)},
                      {"fragment", static_cast<double>(f)}};
        }
        if (trace != nullptr) {
          trace->Complete(label_ + "-fragment", "parallel", trace_start,
                          trace->NowMicros() - trace_start,
                          /*tid=*/static_cast<uint32_t>(100 + lane),
                          {{"fragment", f},
                           {"lane", lane},
                           {"tuples", buffers[f].size()}});
        }
        {
          MutexLock lock(completion_mu);
          completion.push_back(f);
        }
        return drained;
      });

  // Merge even on failure: the work ran, its counters stay monotone.
  fragments.MergeInto(ctx_);
  RELDIV_RETURN_NOT_OK(status);

  size_t total = 0;
  for (const std::vector<Tuple>& b : buffers) total += b.size();
  results_.reserve(total);
  if (order_ == GatherOrder::kFragmentOrder) {
    for (std::vector<Tuple>& b : buffers) {
      for (Tuple& t : b) results_.push_back(std::move(t));
    }
  } else {
    for (size_t f : completion) {
      for (Tuple& t : buffers[f]) results_.push_back(std::move(t));
    }
  }
  return Status::OK();
}

Status ExchangeOperator::Next(Tuple* tuple, bool* has_next) {
  if (emit_pos_ >= results_.size()) {
    *has_next = false;
    return Status::OK();
  }
  *tuple = std::move(results_[emit_pos_++]);
  *has_next = true;
  return Status::OK();
}

Status ExchangeOperator::NextBatch(TupleBatch* batch, bool* has_more) {
  batch->Clear();
  const size_t n = std::min(batch->capacity(), results_.size() - emit_pos_);
  for (size_t i = 0; i < n; ++i) {
    batch->PushBack(std::move(results_[emit_pos_ + i]));
  }
  emit_pos_ += n;
  *has_more = emit_pos_ < results_.size();
  return Status::OK();
}

Status ExchangeOperator::Close() {
  results_.clear();
  results_.shrink_to_fit();
  emit_pos_ = 0;
  return Status::OK();
}

void ExchangeOperator::ExportGauges(GaugeList* gauges) const {
  gauges->emplace_back(metric_names::kGaugeExchangeFragments,
                       static_cast<double>(num_fragments_));
  gauges->emplace_back(metric_names::kGaugeExchangeDop,
                       static_cast<double>(last_dop_));
}

Result<std::vector<std::vector<Tuple>>> DrainAndHashRepartition(
    ExecContext* ctx, Operator* source, const std::vector<size_t>& key_attrs,
    size_t num_partitions) {
  RELDIV_CHECK(num_partitions > 0);
  std::vector<std::vector<Tuple>> buckets(num_partitions);
  RELDIV_RETURN_NOT_OK(source->Open());
  TupleBatch batch(ctx->batch_capacity());
  bool has_more = true;
  Status status;
  while (has_more) {
    status = source->NextBatch(&batch, &has_more);
    if (!status.ok()) break;
    for (size_t i = 0; i < batch.size(); ++i) {
      Tuple& tuple = batch.tuple(i);
      ctx->CountHashes(1);  // one partitioning-function application (§3.4)
      buckets[HashPartitionOf(tuple, key_attrs, num_partitions)].push_back(
          std::move(tuple));
    }
  }
  const Status close = source->Close();
  if (status.ok()) status = close;
  RELDIV_RETURN_NOT_OK(status);
  return buckets;
}

}  // namespace reldiv
