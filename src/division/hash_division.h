#ifndef RELDIV_DIVISION_HASH_DIVISION_H_
#define RELDIV_DIVISION_HASH_DIVISION_H_

#include <memory>
#include <utility>
#include <vector>

#include "division/division.h"
#include "exec/exec_context.h"
#include "exec/hash_table.h"
#include "exec/operator.h"
#include "storage/memory_manager.h"

namespace reldiv {

/// Reusable engine implementing the three steps of Figure 1. Factored out of
/// the operator so that the overflow-partitioned (§3.4) and multi-processor
/// (§6) variants can drive the same logic: the divisor table can be built
/// once and divided against several dividend streams (quotient partitioning
/// keeps the divisor table resident across phases), and the quotient table
/// can be reset per phase.
class HashDivisionCore {
 public:
  /// `match_attrs`: dividend columns matched positionally against all
  /// divisor columns. `quotient_attrs`: the remaining dividend columns.
  HashDivisionCore(ExecContext* ctx, std::vector<size_t> match_attrs,
                   std::vector<size_t> quotient_attrs,
                   const DivisionOptions& options);

  /// Step 1: builds the divisor table, assigning dense divisor numbers.
  /// Duplicates in the divisor are eliminated on the fly (§3.3, point 5).
  /// `divisor` is opened here and closed again on success AND on error — an
  /// abandoned open input would hold buffer pins past the build.
  /// ResourceExhausted when the table outgrows the pool or the
  /// ExecContext::hash_memory_bytes() budget (the §3.4 overflow trigger).
  Status BuildDivisorTable(Operator* divisor,
                           uint64_t expected_cardinality = 0);

  /// Seeds the divisor table from pre-numbered tuples (used by the
  /// collection phase of divisor partitioning, which divides over phase
  /// numbers instead — §3.4).
  Status BuildDivisorTableFromNumbered(
      const std::vector<std::pair<Tuple, uint64_t>>& numbered,
      uint64_t divisor_count);

  /// Shares `owner`'s already-built divisor table (and its dense numbering)
  /// instead of building one: the §6 quotient-partitioning form in-process,
  /// where parallel fragments probe one read-only divisor table. The owner
  /// must outlive this core and must not mutate the table while it is
  /// borrowed. Probes through a borrowed table charge THIS core's context,
  /// so concurrent fragments never race on cost counters. A borrowing
  /// core's memory_bytes() adds a snapshot of the shared table's footprint
  /// to its own quotient table, so hash_memory_bytes budget checks (the
  /// §3.4 overflow trigger) fire exactly where the serial plan's would.
  void BorrowDivisorTable(const HashDivisionCore& owner);

  /// Prepares an empty quotient table (step 2 state). May be called again
  /// to start a new phase; the previous table's memory is released.
  Status ResetQuotientTable(uint64_t expected_cardinality = 0);

  /// Step 2, one dividend tuple. With early output enabled, quotient tuples
  /// whose bit map just filled are appended to `early_out` (§3.3, point 2);
  /// otherwise `early_out` may be nullptr.
  Status Consume(const Tuple& dividend, std::vector<Tuple>* early_out);

  /// Step 2, one dividend batch: the vectorized probe/extend loop. Performs
  /// exactly the per-tuple work of Consume() for each tuple in order, but
  /// bumps the ExecContext cost counters once per batch with the accumulated
  /// totals, so Table 1–4 accounting is bit-identical to the tuple path.
  Status ConsumeBatch(const TupleBatch& batch, std::vector<Tuple>* early_out);

  /// Step 3: scans the quotient table and appends every tuple whose bit map
  /// contains no zero (or whose counter reached the divisor count). A no-op
  /// when early output is enabled — those tuples were produced eagerly.
  Status EmitComplete(std::vector<Tuple>* out);

  uint64_t divisor_count() const { return divisor_count_; }
  size_t quotient_candidates() const {
    return quotient_table_ == nullptr ? 0 : quotient_table_->size();
  }
  size_t memory_bytes() const {
    return divisor_arena_.bytes_allocated() + borrowed_divisor_bytes_ +
           (quotient_arena_ == nullptr ? 0
                                       : quotient_arena_->bytes_allocated());
  }
  /// Distinct (quotient candidate, divisor number) pairs recorded — the
  /// number of 1-bits across all candidate bit maps (counter increments in
  /// the §3.3 point 6 variant). bits_set / (candidates * divisor_count) is
  /// the bit-map fill ratio.
  uint64_t bits_set() const { return bits_set_; }
  /// Quotient tuples produced eagerly by the §3.3 early-output rule.
  uint64_t early_emits() const { return early_emits_; }

 private:
  bool use_bitmaps() const { return !options_.counters_instead_of_bitmaps; }

  /// Cost-counter bumps accumulated across a batch and flushed once.
  struct PendingCounts {
    uint64_t comparisons = 0;
    uint64_t bit_ops = 0;
  };

  /// BuildDivisorTable minus open/close of the input.
  Status ConsumeDivisorStream(Operator* divisor,
                              uint64_t expected_cardinality);

  /// Enforces ExecContext::hash_memory_bytes() (0 = unlimited) over both
  /// tables' arenas. Called only when a table grew, so probe hits are free.
  Status CheckBudget(const char* stage) const;

  Status ConsumeOne(const Tuple& dividend, std::vector<Tuple>* early_out,
                    PendingCounts* pending);
  /// The quotient-table half of ConsumeOne, with the (already counted)
  /// quotient key hash supplied by the caller.
  Status ProbeQuotient(const Tuple& dividend, uint64_t divisor_number,
                       uint64_t quotient_hash, std::vector<Tuple>* early_out,
                       PendingCounts* pending);
  void FlushCounts(const PendingCounts& pending);

  /// Scratch for ConsumeBatch's staged probe: dividend tuples that matched a
  /// divisor tuple, awaiting their quotient-table chain walk.
  struct StagedProbe {
    const Tuple* dividend;
    uint64_t divisor_number;
    uint64_t quotient_hash;
  };
  std::vector<StagedProbe> staged_;

  /// Scratch for the kernelized (single-int64-key) batch path: extracted key
  /// columns and the batched probe hashes (exec/kernels). Reused across
  /// batches, so the steady state allocates nothing.
  std::vector<int64_t> match_keys_;
  std::vector<int64_t> quotient_col_;
  std::vector<int64_t> quotient_keys_matched_;
  std::vector<uint64_t> match_hashes_;
  std::vector<uint64_t> quotient_hashes_;

  ExecContext* ctx_;
  std::vector<size_t> match_attrs_;
  std::vector<size_t> quotient_attrs_;
  DivisionOptions options_;

  Arena divisor_arena_;
  std::unique_ptr<Arena> quotient_arena_;
  std::unique_ptr<TupleHashTable> divisor_table_;
  std::unique_ptr<TupleHashTable> quotient_table_;
  /// The table probed in step 2: divisor_table_.get() after a build, or the
  /// owner's table after BorrowDivisorTable. All probes go through the
  /// counted-context overloads so a shared table charges the prober.
  const TupleHashTable* divisor_view_ = nullptr;
  /// Footprint of a borrowed divisor table at borrow time (the owner's
  /// table no longer grows then), counted into memory_bytes() so budget
  /// checks match the owning/serial plan's.
  size_t borrowed_divisor_bytes_ = 0;
  uint64_t divisor_count_ = 0;
  uint64_t bits_set_ = 0;
  uint64_t early_emits_ = 0;
};

/// The fragment-parallel half of §6 quotient partitioning in-process, shared
/// by HashDivisionOperator::OpenParallel and the fused hash-division
/// pipeline: each bucket of the (already repartitioned) dividend is divided
/// by a private core borrowing `shared_core`'s divisor table on a private
/// counter context, and the fragment outputs are concatenated into `results`
/// in fragment order — deterministic for any worker count. Fragment counters
/// merge into `ctx` in fragment order even on failure.
Status RunDivisionFragments(ExecContext* ctx,
                            const std::vector<size_t>& match_attrs,
                            const std::vector<size_t>& quotient_attrs,
                            const DivisionOptions& options,
                            const HashDivisionCore& shared_core,
                            const std::vector<std::vector<Tuple>>& buckets,
                            std::vector<Tuple>* results);

/// Hash-division (§3): the paper's new algorithm. Two hash tables — the
/// divisor table maps divisor tuples to dense divisor numbers; the quotient
/// table holds quotient candidates, each with a bit map indexed by divisor
/// number. The quotient is exactly the candidates whose bit map has no zero
/// bit. Dividend tuples with no matching divisor tuple are discarded
/// immediately; dividend duplicates are ignored automatically; divisor
/// duplicates are eliminated while building the divisor table.
///
/// Default mode is a stop-and-go operator (inputs consumed in Open(),
/// quotient produced by scanning the table). With
/// DivisionOptions::early_output the operator becomes a pipelined producer:
/// each quotient tuple is emitted the moment its counter reaches the divisor
/// count.
class HashDivisionOperator : public Operator {
 public:
  HashDivisionOperator(ExecContext* ctx, std::unique_ptr<Operator> dividend,
                       std::unique_ptr<Operator> divisor,
                       std::vector<size_t> match_attrs,
                       std::vector<size_t> quotient_attrs,
                       const DivisionOptions& options = {});

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status NextBatch(TupleBatch* batch, bool* has_more) override;
  /// Batch-native when both inputs are: the dividend is consumed through
  /// ConsumeBatch and the quotient is emitted batch-wise.
  bool IsBatchNative() const override {
    return dividend_->IsBatchNative() && divisor_->IsBatchNative();
  }
  Status Close() override;

  /// Divisor cardinality, quotient candidates, table memory, bit-map fill
  /// ratio, and (with early output) eager emissions. Live only while the
  /// core exists, i.e. between Open() and Close().
  void ExportGauges(GaugeList* gauges) const override;

 private:
  /// The DivisionOptions::parallel_fragments path: divisor table built once,
  /// dividend hash-repartitioned on the quotient attributes, fragments
  /// divided concurrently with private quotient tables, results concatenated
  /// in fragment order (deterministic output for any worker count).
  Status OpenParallel();

  ExecContext* ctx_;
  std::unique_ptr<Operator> dividend_;
  std::unique_ptr<Operator> divisor_;
  std::vector<size_t> match_attrs_;
  std::vector<size_t> quotient_attrs_;
  DivisionOptions options_;
  Schema schema_;

  std::unique_ptr<HashDivisionCore> core_;
  std::vector<Tuple> results_;  ///< stop-and-go output / early-output buffer
  TupleBatch input_batch_{1};   ///< early-output dividend pull buffer
  size_t emit_pos_ = 0;
  bool dividend_done_ = false;
};

}  // namespace reldiv

#endif  // RELDIV_DIVISION_HASH_DIVISION_H_
