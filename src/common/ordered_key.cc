#include "common/ordered_key.h"

#include <cstring>

namespace reldiv {

namespace {

void PutU64BigEndian(uint64_t v, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

}  // namespace

Status EncodeOrderedKey(const Tuple& tuple, std::string* out) {
  for (size_t i = 0; i < tuple.size(); ++i) {
    const Value& v = tuple.value(i);
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kInt64: {
        const uint64_t bits =
            static_cast<uint64_t>(v.int64()) ^ (uint64_t{1} << 63);
        PutU64BigEndian(bits, out);
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits;
        const double d = v.double_value();
        std::memcpy(&bits, &d, sizeof(bits));
        if (bits & (uint64_t{1} << 63)) {
          bits = ~bits;  // negative: invert everything
        } else {
          bits |= uint64_t{1} << 63;  // positive: set the sign bit
        }
        PutU64BigEndian(bits, out);
        break;
      }
      case ValueType::kString: {
        for (char c : v.string_value()) {
          if (c == '\0') {
            out->push_back('\0');
            out->push_back('\xff');
          } else {
            out->push_back(c);
          }
        }
        out->push_back('\0');
        out->push_back('\0');
        break;
      }
    }
  }
  return Status::OK();
}

Result<std::string> OrderedKeyToString(const Tuple& tuple) {
  std::string out;
  RELDIV_RETURN_NOT_OK(EncodeOrderedKey(tuple, &out));
  return out;
}

}  // namespace reldiv
