#include "common/tuple.h"

#include "common/hash.h"

namespace reldiv {

Tuple Tuple::Project(const std::vector<size_t>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (size_t idx : indices) out.push_back(values_[idx]);
  return Tuple(std::move(out));
}

int Tuple::Compare(const Tuple& other) const {
  const size_t n = values_.size() < other.values_.size()
                       ? values_.size()
                       : other.values_.size();
  for (size_t i = 0; i < n; ++i) {
    int c = values_[i].Compare(other.values_[i]);
    if (c != 0) return c;
  }
  if (values_.size() < other.values_.size()) return -1;
  if (values_.size() > other.values_.size()) return 1;
  return 0;
}

int Tuple::CompareAt(const std::vector<size_t>& indices,
                     const Tuple& other) const {
  for (size_t idx : indices) {
    int c = values_[idx].Compare(other.values_[idx]);
    if (c != 0) return c;
  }
  return 0;
}

int Tuple::CompareAtAgainstWhole(const std::vector<size_t>& indices,
                                 const Tuple& other) const {
  for (size_t i = 0; i < indices.size(); ++i) {
    if (i >= other.size()) return 1;
    int c = values_[indices[i]].Compare(other.value(i));
    if (c != 0) return c;
  }
  if (indices.size() < other.size()) return -1;
  return 0;
}

uint64_t Tuple::Hash() const {
  uint64_t h = 0x51ed270b153a4d2full;
  for (const Value& v : values_) h = HashCombine(h, v.Hash());
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace reldiv
