// Compile-only fixture proving the -Wthread-safety gate has teeth.
//
// Built two ways by tests/CMakeLists.txt (Clang only; GCC ignores the
// annotations entirely):
//
//   thread_safety_positive_compile  — compiled as-is with
//       -Wthread-safety -Werror: every access below is correctly locked,
//       so the translation unit MUST be accepted. This is the control
//       that keeps the negative test honest (a broken include path or a
//       syntax error would otherwise "fail" for the wrong reason).
//
//   thread_safety_negative_compile  — compiled with
//       -DRELDIV_EXPECT_TSA_ERROR, which adds an unguarded write to a
//       GUARDED_BY member. The compile MUST fail (ctest WILL_FAIL): if
//       it ever starts succeeding, the analysis has been silently
//       disabled — the macros expanded to nothing, the warning flag got
//       dropped, or the wrapper types lost their capability attributes —
//       and the whole DESIGN.md §13 contract is rotting unchecked.
//
// This file is never linked into a test binary; both targets use
// -fsyntax-only via add_test compiler invocations.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace reldiv {
namespace {

class Counter {
 public:
  void Increment() {
    MutexLock lock(mu_);
    value_++;
  }

  int value() const {
    MutexLock lock(mu_);
    return value_;
  }

#ifdef RELDIV_EXPECT_TSA_ERROR
  // Unguarded write to a GUARDED_BY member: -Wthread-safety must reject
  // this function ("writing variable 'value_' requires holding mutex
  // 'mu_' exclusively").
  void IncrementRacy() { value_++; }
#endif

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

// The file is compiled with -fsyntax-only, but keep a use so the class
// is instantiated even if a build rule ever links it.
[[maybe_unused]] int Use() {
  Counter c;
  c.Increment();
  return c.value();
}

}  // namespace
}  // namespace reldiv
