file(REMOVE_RECURSE
  "CMakeFiles/table4_experimental.dir/table4_experimental.cc.o"
  "CMakeFiles/table4_experimental.dir/table4_experimental.cc.o.d"
  "table4_experimental"
  "table4_experimental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_experimental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
