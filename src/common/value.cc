#include "common/value.h"

#include <cstdio>

#include "common/hash.h"

namespace reldiv {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "int64";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "unknown";
}

int Value::Compare(const Value& other) const {
  if (type_ != other.type_) {
    return static_cast<int>(type_) < static_cast<int>(other.type_) ? -1 : 1;
  }
  switch (type_) {
    case ValueType::kInt64:
      if (int64_ < other.int64_) return -1;
      if (int64_ > other.int64_) return 1;
      return 0;
    case ValueType::kDouble:
      if (double_ < other.double_) return -1;
      if (double_ > other.double_) return 1;
      return 0;
    case ValueType::kString:
      return string_.compare(other.string_) < 0
                 ? -1
                 : (string_ == other.string_ ? 0 : 1);
  }
  return 0;
}

uint64_t Value::Hash() const {
  const uint64_t tag = static_cast<uint64_t>(type_) + 1;
  switch (type_) {
    case ValueType::kInt64:
      return HashCombine(tag, Hash64(static_cast<uint64_t>(int64_)));
    case ValueType::kDouble: {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(double_));
      __builtin_memcpy(&bits, &double_, sizeof(bits));
      return HashCombine(tag, Hash64(bits));
    }
    case ValueType::kString:
      return HashCombine(tag, HashBytes(string_.data(), string_.size()));
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kInt64:
      return std::to_string(int64_);
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", double_);
      return buf;
    }
    case ValueType::kString:
      return string_;
  }
  return "";
}

}  // namespace reldiv
