#ifndef RELDIV_EXEC_PROJECT_H_
#define RELDIV_EXEC_PROJECT_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace reldiv {

/// Projection to a column subset (no duplicate elimination; combine with
/// SortOperator{collapse} or hash aggregation when set semantics are
/// needed — duplicate handling is a first-class topic of the paper).
class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::unique_ptr<Operator> child,
                  std::vector<size_t> indices)
      : child_(std::move(child)),
        indices_(std::move(indices)),
        schema_(child_->output_schema().Project(indices_)) {}

  const Schema& output_schema() const override { return schema_; }

  Status Open() override { return child_->Open(); }

  Status Next(Tuple* tuple, bool* has_next) override {
    Tuple in;
    bool has = false;
    RELDIV_RETURN_NOT_OK(child_->Next(&in, &has));
    if (!has) {
      *has_next = false;
      return Status::OK();
    }
    *tuple = in.Project(indices_);
    *has_next = true;
    return Status::OK();
  }

  Status Close() override { return child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> indices_;
  Schema schema_;
};

}  // namespace reldiv

#endif  // RELDIV_EXEC_PROJECT_H_
