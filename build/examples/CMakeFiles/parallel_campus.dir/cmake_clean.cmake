file(REMOVE_RECURSE
  "CMakeFiles/parallel_campus.dir/parallel_campus.cpp.o"
  "CMakeFiles/parallel_campus.dir/parallel_campus.cpp.o.d"
  "parallel_campus"
  "parallel_campus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_campus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
