#include "obs/profiled_operator.h"

#include <chrono>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace reldiv {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Operator lifecycle transitions are rare (two per operator per query), so
/// the flight recorder notes them even in counting mode — a post-mortem dump
/// then shows how far the plan got before dying.
void RecordLifecycle(const char* transition, const std::string& label) {
  if (!Telemetry::counting()) return;
  FlightRecorder::Global().Record(FlightEventCategory::kOperator, transition,
                                  label);
}

}  // namespace

/// Snapshots wall clock, CPU counters, and disk stats at construction and
/// adds the deltas to the target metrics on destruction, so every return
/// path of a forwarded call is accounted.
class ProfiledOperator::CallScope {
 public:
  CallScope(ExecContext* ctx, OperatorMetrics* metrics, uint64_t* ns_bucket)
      : ctx_(ctx),
        metrics_(metrics),
        ns_bucket_(ns_bucket),
        cpu_before_(*ctx->counters()),
        io_before_(ctx->disk()->stats()),
        start_ns_(NowNs()) {}

  ~CallScope() {
    *ns_bucket_ += NowNs() - start_ns_;
    metrics_->cpu += *ctx_->counters() - cpu_before_;
    metrics_->io += ctx_->disk()->stats() - io_before_;
  }

  CallScope(const CallScope&) = delete;
  CallScope& operator=(const CallScope&) = delete;

 private:
  ExecContext* ctx_;
  OperatorMetrics* metrics_;
  uint64_t* ns_bucket_;
  CpuCounters cpu_before_;
  DiskStats io_before_;
  uint64_t start_ns_;
};

ProfiledOperator::ProfiledOperator(ExecContext* ctx,
                                   std::unique_ptr<Operator> child,
                                   std::string label, size_t adopt_mark)
    : ctx_(ctx),
      child_(std::move(child)),
      label_(std::move(label)),
      node_(ctx->profile()->CreateNode(label_, adopt_mark)) {}

Status ProfiledOperator::Open() {
  OperatorMetrics& m = node_->metrics();
  m.opens++;
  m.gauges.clear();  // a re-opened plan replays; stale gauges would double
  drain_started_ = false;
  gauges_collected_ = false;
  RecordLifecycle("open", label_);
  TraceRecorder* trace = ctx_->trace();
  if (trace != nullptr) open_start_us_ = trace->NowMicros();
  Status status;
  {
    CallScope scope(ctx_, &m, &m.open_ns);
    status = child_->Open();
  }
  if (trace != nullptr) {
    trace->Complete("open " + label_, "operator", open_start_us_,
                    trace->NowMicros() - open_start_us_);
  }
  return status;
}

Status ProfiledOperator::Next(Tuple* tuple, bool* has_next) {
  OperatorMetrics& m = node_->metrics();
  m.next_calls++;
  TraceRecorder* trace = ctx_->trace();
  if (!drain_started_ && trace != nullptr) {
    drain_start_us_ = trace->NowMicros();
  }
  drain_started_ = true;
  Status status;
  {
    CallScope scope(ctx_, &m, &m.next_ns);
    status = child_->Next(tuple, has_next);
  }
  if (status.ok() && *has_next) m.tuples_out++;
  if (status.ok() && !*has_next) {
    CollectGauges();
    if (trace != nullptr) {
      trace->Complete("drain " + label_, "operator", drain_start_us_,
                      trace->NowMicros() - drain_start_us_,
                      /*tid=*/0, {{"tuples", m.tuples_out}});
    }
  }
  return status;
}

Status ProfiledOperator::NextBatch(TupleBatch* batch, bool* has_more) {
  OperatorMetrics& m = node_->metrics();
  m.next_batch_calls++;
  TraceRecorder* trace = ctx_->trace();
  if (!drain_started_ && trace != nullptr) {
    drain_start_us_ = trace->NowMicros();
  }
  drain_started_ = true;
  Status status;
  {
    CallScope scope(ctx_, &m, &m.next_ns);
    status = child_->NextBatch(batch, has_more);
  }
  if (status.ok()) {
    m.tuples_out += batch->size();
    if (batch->size() > 0) m.batches_out++;
    if (!*has_more) {
      CollectGauges();
      if (trace != nullptr) {
        trace->Complete("drain " + label_, "operator", drain_start_us_,
                        trace->NowMicros() - drain_start_us_,
                        /*tid=*/0, {{"tuples", m.tuples_out}});
      }
    }
  }
  return status;
}

Status ProfiledOperator::Close() {
  OperatorMetrics& m = node_->metrics();
  m.closes++;
  // A consumer may Close() before draining to end-of-stream (early-output
  // shortcuts); the child's state is still live here, so this is the last
  // chance to read its gauges.
  CollectGauges();
  RecordLifecycle("close", label_);
  TraceRecorder* trace = ctx_->trace();
  const uint64_t start_us = trace != nullptr ? trace->NowMicros() : 0;
  Status status;
  {
    CallScope scope(ctx_, &m, &m.close_ns);
    status = child_->Close();
  }
  if (trace != nullptr) {
    trace->Complete("close " + label_, "operator", start_us,
                    trace->NowMicros() - start_us);
  }
  return status;
}

void ProfiledOperator::CollectGauges() {
  if (gauges_collected_) return;
  gauges_collected_ = true;
  child_->ExportGauges(&node_->metrics().gauges);
}

std::unique_ptr<Operator> MaybeProfile(ExecContext* ctx,
                                       std::unique_ptr<Operator> op,
                                       std::string label, size_t adopt_mark) {
  if (!ctx->profiling()) return op;
  return std::make_unique<ProfiledOperator>(ctx, std::move(op),
                                            std::move(label), adopt_mark);
}

size_t ProfileMark(const ExecContext* ctx) {
  return ctx->profiling() ? ctx->profile()->Mark() : 0;
}

}  // namespace reldiv
