#include "storage/record_file.h"

#include "testing/failpoint.h"

namespace reldiv {

RecordFile::RecordFile(SimDisk* disk, BufferManager* buffer_manager,
                       std::string name)
    : name_(std::move(name)), buffer_manager_(buffer_manager), file_(disk) {}

Result<Rid> RecordFile::Append(Slice record) {
  if (record.size() > SlottedPage::kMaxRecordSize) {
    return Status::InvalidArgument("record larger than a page in file '" +
                                   name_ + "'");
  }
  // Try the last page first.
  if (has_open_page_) {
    const uint64_t local = file_.num_pages() - 1;
    RELDIV_ASSIGN_OR_RETURN(uint64_t global, file_.GlobalPage(local));
    RELDIV_ASSIGN_OR_RETURN(char* frame,
                            buffer_manager_->Fix(global, /*create=*/false));
    SlottedPage page(frame);
    if (page.Fits(record.size())) {
      RELDIV_ASSIGN_OR_RETURN(uint16_t slot, page.AddRecord(record));
      RELDIV_RETURN_NOT_OK(buffer_manager_->Unfix(global, /*dirty=*/true));
      num_records_++;
      BumpVersion();
      return Rid{static_cast<uint32_t>(local), slot};
    }
    has_open_page_ = false;
    RELDIV_RETURN_NOT_OK(buffer_manager_->Unfix(global, /*dirty=*/false));
  }
  // Allocate a fresh page. ExtentFile::AllocatePage itself is infallible
  // (pure bookkeeping), so the extent-growth failpoint sits in front of it.
  RELDIV_FAILPOINT("extent_file/append");
  const uint64_t local = file_.AllocatePage();
  RELDIV_ASSIGN_OR_RETURN(uint64_t global, file_.GlobalPage(local));
  RELDIV_ASSIGN_OR_RETURN(char* frame,
                          buffer_manager_->Fix(global, /*create=*/true));
  SlottedPage page(frame);
  page.Init();
  RELDIV_ASSIGN_OR_RETURN(uint16_t slot, page.AddRecord(record));
  RELDIV_RETURN_NOT_OK(buffer_manager_->Unfix(global, /*dirty=*/true));
  has_open_page_ = true;
  num_records_++;
  BumpVersion();
  return Rid{static_cast<uint32_t>(local), slot};
}

Status RecordFile::Delete(Rid rid) {
  RELDIV_ASSIGN_OR_RETURN(uint64_t global, file_.GlobalPage(rid.page_no));
  RELDIV_ASSIGN_OR_RETURN(char* frame,
                          buffer_manager_->Fix(global, /*create=*/false));
  SlottedPage page(frame);
  if (!page.IsLive(rid.slot)) {
    Status unfix = buffer_manager_->Unfix(global, /*dirty=*/false);
    (void)unfix;
    return Status::NotFound("record " + rid.ToString() +
                            " already deleted or absent");
  }
  RELDIV_RETURN_NOT_OK(page.DeleteRecord(rid.slot));
  RELDIV_RETURN_NOT_OK(buffer_manager_->Unfix(global, /*dirty=*/true));
  num_records_--;
  BumpVersion();
  return Status::OK();
}

Status RecordFile::Get(Rid rid, Slice* payload, PageGuard* guard) {
  RELDIV_ASSIGN_OR_RETURN(uint64_t global, file_.GlobalPage(rid.page_no));
  RELDIV_ASSIGN_OR_RETURN(char* frame,
                          buffer_manager_->Fix(global, /*create=*/false));
  SlottedPage page(frame);
  auto record = page.GetRecord(rid.slot);
  if (!record.ok()) {
    Status unfix = buffer_manager_->Unfix(global, /*dirty=*/false);
    (void)unfix;
    return record.status();
  }
  *payload = record.value();
  *guard = PageGuard(buffer_manager_, global, frame, /*dirty=*/false);
  return Status::OK();
}

/// Sequential scan keeping the current page fixed between Next() calls so
/// that returned payload slices stay valid (records used in place).
class RecordFile::FileScan : public RecordScan {
 public:
  explicit FileScan(RecordFile* file) : file_(file) {}

  ~FileScan() override {
    Status st = Close();
    (void)st;
  }

  Status Next(RecordRef* ref, bool* has_next) override {
    while (true) {
      if (!page_fixed_) {
        if (next_page_ >= file_->file_.num_pages()) {
          *has_next = false;
          return Status::OK();
        }
        RELDIV_ASSIGN_OR_RETURN(uint64_t global,
                                file_->file_.GlobalPage(next_page_));
        RELDIV_ASSIGN_OR_RETURN(
            frame_, file_->buffer_manager_->Fix(global, /*create=*/false));
        global_page_ = global;
        local_page_ = next_page_;
        next_page_++;
        next_slot_ = 0;
        page_fixed_ = true;
      }
      SlottedPage page(frame_);
      if (next_slot_ < page.num_slots()) {
        if (!page.IsLive(next_slot_)) {  // deleted records are skipped
          next_slot_++;
          continue;
        }
        RELDIV_ASSIGN_OR_RETURN(Slice payload, page.GetRecord(next_slot_));
        ref->rid = Rid{static_cast<uint32_t>(local_page_), next_slot_};
        ref->payload = payload;
        next_slot_++;
        *has_next = true;
        return Status::OK();
      }
      // Page exhausted: move on. A scanned page of a base file is likely to
      // be re-read only in multi-pass algorithms, so keep it in LRU.
      RELDIV_RETURN_NOT_OK(
          file_->buffer_manager_->Unfix(global_page_, /*dirty=*/false));
      page_fixed_ = false;
    }
  }

  // Page-native batch scan: delivers the current page's live records in one
  // tight loop, one virtual call per page instead of per record. A call
  // never crosses a page boundary, and an exhausted page stays fixed until
  // the NEXT call so that the delivered payload slices remain valid.
  Status NextBatch(RecordRef* refs, size_t capacity, size_t* count,
                   bool* has_more) override {
    size_t n = 0;
    while (true) {
      if (page_fixed_) {
        SlottedPage page(frame_);
        const uint16_t slots = page.num_slots();
        if (next_slot_ >= slots) {
          RELDIV_RETURN_NOT_OK(
              file_->buffer_manager_->Unfix(global_page_, /*dirty=*/false));
          page_fixed_ = false;
        } else {
          while (n < capacity && next_slot_ < slots) {
            Slice payload;
            if (page.GetIfLive(next_slot_, &payload)) {
              refs[n].rid =
                  Rid{static_cast<uint32_t>(local_page_), next_slot_};
              refs[n].payload = payload;
              n++;
            }
            next_slot_++;
          }
          if (n > 0) {
            // Batch full or page drained; either way stop here (the page
            // stays fixed, keeping the slices alive).
            *count = n;
            *has_more = true;
            return Status::OK();
          }
          continue;
        }
      }
      if (next_page_ >= file_->file_.num_pages()) {
        *count = n;
        *has_more = false;
        return Status::OK();
      }
      RELDIV_ASSIGN_OR_RETURN(uint64_t global,
                              file_->file_.GlobalPage(next_page_));
      RELDIV_ASSIGN_OR_RETURN(
          frame_, file_->buffer_manager_->Fix(global, /*create=*/false));
      global_page_ = global;
      local_page_ = next_page_;
      next_page_++;
      next_slot_ = 0;
      page_fixed_ = true;
    }
  }

  Status Close() override {
    if (page_fixed_) {
      page_fixed_ = false;
      return file_->buffer_manager_->Unfix(global_page_, /*dirty=*/false);
    }
    return Status::OK();
  }

 private:
  RecordFile* file_;
  uint64_t next_page_ = 0;
  uint64_t local_page_ = 0;
  uint64_t global_page_ = 0;
  uint16_t next_slot_ = 0;
  char* frame_ = nullptr;
  bool page_fixed_ = false;
};

Result<std::unique_ptr<RecordScan>> RecordFile::OpenScan() {
  return std::unique_ptr<RecordScan>(std::make_unique<FileScan>(this));
}

}  // namespace reldiv
