#ifndef RELDIV_EXEC_FUSED_FUSED_PIPELINE_H_
#define RELDIV_EXEC_FUSED_FUSED_PIPELINE_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "exec/kernels/kernels.h"
#include "exec/operator.h"
#include "exec/scan.h"

namespace reldiv {
namespace fused {

/// Compile-time fused pipelines (DESIGN.md §12). A fused operator inlines a
/// whole scan→filter→project→probe chain into a single NextBatch body: the
/// stages are plain member calls on a concrete Source type and the kernels
/// in exec/kernels, so the only virtual dispatch left is the one call into
/// the pipeline itself. To the rest of the system a fused pipeline is an
/// ordinary Operator — ContractCheckOperator, ProfiledOperator, and the
/// morsel scheduler compose unchanged.
///
/// Counter contract: fusion may never change what is counted, only how fast
/// it runs. The absorbed stages replicate the accounting of the operators
/// they replace — scan decode via the shared RelationSource, filter and
/// project which count nothing, probes via HashDivisionCore — so a fused
/// plan's Table 1–4 totals are bit-identical to the equivalent virtual
/// chain's.
///
/// Lint: loop bodies here must not touch tuple values one at a time
/// (tools/lint.py `fused-value-access`); they go through the batch kernels
/// and Tuple::ProjectInto instead.

/// CRTP base supplying the Operator protocol around a derived pipeline.
/// The derived class implements OpenImpl / NextBatchImpl / CloseImpl /
/// BatchCapacity and inherits Next() via the standard TupleAdapter, so both
/// protocol granularities observe the same stream.
template <typename Derived>
class FusedOperatorBase : public Operator {
 public:
  Status Open() override {
    adapter_.Reset(derived()->BatchCapacity());
    return derived()->OpenImpl();
  }
  Status Next(Tuple* tuple, bool* has_next) override {
    return adapter_.Next(this, tuple, has_next);
  }
  Status NextBatch(TupleBatch* batch, bool* has_more) override {
    batch->Clear();
    return derived()->NextBatchImpl(batch, has_more);
  }
  bool IsBatchNative() const override { return true; }
  Status Close() override { return derived()->CloseImpl(); }

 private:
  Derived* derived() { return static_cast<Derived*>(this); }

  TupleAdapter adapter_;
};

/// A fusable selection: one int64 column compared against a constant — the
/// predicate shape of the paper's workload filters. `enabled == false` makes
/// the stage a no-op, so every pipeline carries one unconditionally.
struct FusedFilter {
  size_t column = 0;
  kernels::CmpOp op = kernels::CmpOp::kEq;
  int64_t constant = 0;
  bool enabled = false;
};

/// Applies a FusedFilter to batches in place via the compare kernel.
/// Counts nothing, exactly like FilterOperator, whose predicate evaluation
/// is not a Table 1 operation.
class FusedFilterRunner {
 public:
  FusedFilterRunner() = default;
  explicit FusedFilterRunner(FusedFilter filter) : filter_(filter) {}

  bool enabled() const { return filter_.enabled; }

  Status Apply(TupleBatch* batch) {
    if (!filter_.enabled || batch->empty()) return Status::OK();
    if (!kernels::ExtractInt64Column(*batch, filter_.column, &column_)) {
      return Status::InvalidArgument(
          "fused filter: filter column is not an int64");
    }
    mask_.resize(batch->size());
    kernels::CompareInt64(column_.data(), batch->size(), filter_.op,
                          filter_.constant, mask_.data());
    batch->RetainMask(mask_.data());
    return Status::OK();
  }

 private:
  FusedFilter filter_;
  std::vector<int64_t> column_;  ///< scratch: extracted filter column
  std::vector<uint8_t> mask_;    ///< scratch: compare-kernel output
};

/// Source over a borrowed in-memory tuple vector — MemSourceOperator minus
/// the Operator protocol. The vector must outlive the pipeline.
class VectorSource {
 public:
  VectorSource(const Schema* schema, const std::vector<Tuple>* tuples)
      : schema_(schema), tuples_(tuples) {}

  const Schema& schema() const { return *schema_; }

  Status Open() {
    next_ = 0;
    return Status::OK();
  }

  Status NextBatchInto(TupleBatch* batch, bool* has_more) {
    const size_t n = std::min(batch->capacity(), tuples_->size() - next_);
    for (size_t i = 0; i < n; ++i) batch->PushBack((*tuples_)[next_ + i]);
    next_ += n;
    *has_more = next_ < tuples_->size();
    return Status::OK();
  }

  Status Close() { return Status::OK(); }

 private:
  const Schema* schema_;
  const std::vector<Tuple>* tuples_;
  size_t next_ = 0;
};

/// Fused scan→filter→project pipeline over any Source (RelationSource,
/// VectorSource): one NextBatch body decodes a batch, compacts it through
/// the compare kernel, and projects survivors with buffer-reusing
/// Tuple::ProjectInto — no per-tuple operator hops, no per-call allocation.
/// An empty `projection` means identity (no projection stage).
template <typename Source>
class FusedScanFilterProject final
    : public FusedOperatorBase<FusedScanFilterProject<Source>> {
 public:
  FusedScanFilterProject(ExecContext* ctx, Source source, FusedFilter filter,
                         std::vector<size_t> projection)
      : ctx_(ctx),
        source_(std::move(source)),
        filter_(filter),
        projection_(std::move(projection)),
        schema_(projection_.empty() ? source_.schema()
                                    : source_.schema().Project(projection_)) {}

  const Schema& output_schema() const override { return schema_; }

  size_t BatchCapacity() const { return ctx_->batch_capacity(); }

  Status OpenImpl() {
    RELDIV_RETURN_NOT_OK(source_.Open());
    source_open_ = true;
    return Status::OK();
  }

  Status NextBatchImpl(TupleBatch* batch, bool* has_more) {
    if (projection_.empty()) {
      RELDIV_RETURN_NOT_OK(source_.NextBatchInto(batch, has_more));
      return filter_.Apply(batch);
    }
    if (scratch_.capacity() != batch->capacity()) {
      scratch_.ResetCapacity(batch->capacity(), ctx_->pool());
    }
    scratch_.Clear();
    RELDIV_RETURN_NOT_OK(source_.NextBatchInto(&scratch_, has_more));
    RELDIV_RETURN_NOT_OK(filter_.Apply(&scratch_));
    for (const Tuple& tuple : scratch_) {
      tuple.ProjectInto(projection_, batch->AddSlotForOverwrite());
    }
    return Status::OK();
  }

  Status CloseImpl() {
    if (!source_open_) return Status::OK();
    source_open_ = false;
    return source_.Close();
  }

 private:
  ExecContext* ctx_;
  Source source_;
  FusedFilterRunner filter_;
  std::vector<size_t> projection_;
  Schema schema_;
  TupleBatch scratch_{1};  ///< pre-projection staging, re-dimensioned lazily
  bool source_open_ = false;
};

}  // namespace fused
}  // namespace reldiv

#endif  // RELDIV_EXEC_FUSED_FUSED_PIPELINE_H_
