#include "parallel/network.h"

#include "testing/failpoint.h"

namespace reldiv {

namespace {

/// A dropped packet or a momentarily full receive buffer clears on retry;
/// anything else (corruption, unknown address) will not.
bool IsTransient(StatusCode code) {
  return code == StatusCode::kIOError ||
         code == StatusCode::kResourceExhausted;
}

}  // namespace

Status Interconnect::TrySend(size_t from, size_t to, uint64_t bytes) {
  RELDIV_FAILPOINT("network/send");
  // The shipment is on the wire: it is accounted whether or not the
  // receiver accepts it, mirroring real interconnect counters.
  messages_++;
  bytes_ += bytes;
  sent_matrix_[from * num_nodes_ + to] += bytes;
  if (trace_ != nullptr) {
    // Sender's timeline lane (tid = 1 + node_id; 0 is the query thread).
    trace_->Instant("ship", "network", static_cast<uint32_t>(1 + from),
                    {{"to", to}, {"bytes", bytes}});
  }
  RELDIV_FAILPOINT("network/recv");
  return Status::OK();
}

Status Interconnect::Ship(size_t from, size_t to, uint64_t bytes) {
  RELDIV_DCHECK_LT(from, num_nodes_) << "shipment from an unknown node";
  RELDIV_DCHECK_LT(to, num_nodes_) << "shipment to an unknown node";
  if (from == to) return Status::OK();
  const size_t max_attempts =
      retry_.max_attempts == 0 ? 1 : retry_.max_attempts;
  Status last;
  for (size_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff, in simulated units so tests stay fast and
      // deterministic: 1, 2, 4, ... per successive retry of this shipment.
      retries_++;
      backoff_units_ += uint64_t{1} << (attempt - 1);
    }
    last = TrySend(from, to, bytes);
    if (last.ok()) return last;
    if (!IsTransient(last.code())) return last;
  }
  return Status(last.code(), "shipment " + std::to_string(from) + "->" +
                                 std::to_string(to) + " failed after " +
                                 std::to_string(max_attempts) +
                                 " attempts: " + last.message());
}

Status Interconnect::Broadcast(size_t from, uint64_t bytes) {
  for (size_t to = 0; to < num_nodes_; ++to) {
    RELDIV_RETURN_NOT_OK(Ship(from, to, bytes));
  }
  return Status::OK();
}

}  // namespace reldiv
