#ifndef RELDIV_TESTING_FAILPOINT_H_
#define RELDIV_TESTING_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace reldiv {

/// Deterministic fault injection for the layers that can actually fail:
/// disk transfers, buffer-pool pins, memory grants, extent growth, network
/// sends. Production code marks each such spot with a named *site*
/// (RELDIV_FAILPOINT below); tests arm sites with a trigger policy and the
/// site then returns an injected error Status (or a forced "memory denied"
/// verdict) exactly when the policy says so.
///
/// Zero overhead when disabled: the macros compile to one relaxed atomic
/// load of a global armed-site counter plus a predicted-not-taken branch.
/// The registry (map lookup, policy evaluation, hit/fire counters) is only
/// entered while at least one site is armed anywhere in the process.
///
/// Determinism: every policy is a pure function of the site's hit index —
/// WithProbability draws by HASHING (seed, hit index) rather than advancing
/// a stateful stream, so which hits fire is fixed by the policy alone. Under
/// concurrent traversal the ASSIGNMENT of hit indices to threads depends on
/// the schedule, but the fired SET {k : draw(seed, k) < percent} and hence
/// the total fire count for a given hit count do not — stress failures
/// reproduce from the printed seed alone, and multi-threaded runs fire
/// exactly as often as serial ones. (The earlier design advanced one
/// xorshift stream per site; interleaved threads then consumed draws in
/// schedule order, making fire placement — and with it, which thread's
/// operation failed — irreproducible. That was the latent bug.)
///
/// The full site catalog lives in kFailpointSites below; tools/lint.py
/// rejects RELDIV_FAILPOINT invocations whose site string is not listed,
/// and checks that the files owning each site still contain it.

/// Per-site trigger policy. Construct via the factories; the default
/// (never fires) is what an unarmed site behaves like.
struct FailpointPolicy {
  enum class Trigger {
    kNever,
    kAlways,       ///< fires on every hit
    kOnNthHit,     ///< fires exactly on hit number `n` (1-based), once
    kProbability,  ///< fires on each hit with probability pct/100, seeded
  };

  Trigger trigger = Trigger::kNever;
  uint64_t n = 0;               ///< kOnNthHit: the 1-based hit to fire on
  uint32_t percent = 0;         ///< kProbability: fire chance in [0, 100]
  uint64_t seed = 0;            ///< kProbability: per-site Rng seed
  StatusCode code = StatusCode::kIOError;  ///< injected error code
  std::string message;          ///< appended to the injected error text

  static FailpointPolicy Always(StatusCode code = StatusCode::kIOError,
                                std::string message = "") {
    FailpointPolicy p;
    p.trigger = Trigger::kAlways;
    p.code = code;
    p.message = std::move(message);
    return p;
  }

  /// Fires exactly on the `n`-th hit after arming (1-based); earlier and
  /// later hits pass through. Models one transient fault at a precise
  /// moment — "the third page read of this query fails".
  static FailpointPolicy OnNthHit(uint64_t n,
                                  StatusCode code = StatusCode::kIOError,
                                  std::string message = "") {
    FailpointPolicy p;
    p.trigger = Trigger::kOnNthHit;
    p.n = n == 0 ? 1 : n;
    p.code = code;
    p.message = std::move(message);
    return p;
  }

  /// Fires on each hit independently with probability `percent`/100. The
  /// per-hit draw is ProbabilityFiresOnHit — a stateless hash of (seed, hit
  /// index), schedule-independent by construction.
  static FailpointPolicy WithProbability(
      uint32_t percent, uint64_t seed,
      StatusCode code = StatusCode::kIOError, std::string message = "") {
    FailpointPolicy p;
    p.trigger = Trigger::kProbability;
    p.percent = percent > 100 ? 100 : percent;
    p.seed = seed;
    p.code = code;
    p.message = std::move(message);
    return p;
  }

  /// Whether a WithProbability(percent, seed) policy fires on its
  /// `hit_index`-th hit (1-based). Pure function of its arguments, so tests
  /// can precompute the exact fire set a hammering run must observe — even
  /// when the hits arrive from many threads at once.
  static bool ProbabilityFiresOnHit(uint32_t percent, uint64_t seed,
                                    uint64_t hit_index);
};

/// Process-wide failpoint registry. Thread-safe: sites are hit from worker
/// threads (the §6 shared-nothing nodes) while tests arm and read counters
/// from the main thread.
class FailpointRegistry {
 public:
  static FailpointRegistry& Global();

  /// Arms `site` with `policy`, resetting its hit/fire counters. Arming an
  /// armed site replaces its policy.
  void Arm(const std::string& site, FailpointPolicy policy);

  /// Disarms `site`; its counters stay readable until the next Arm or
  /// DisarmAll. Unknown sites are ignored.
  void Disarm(const std::string& site);

  /// Disarms every site and forgets all counters.
  void DisarmAll();

  /// Times the site was evaluated while armed / times it fired. 0 for
  /// unknown sites.
  uint64_t hits(const std::string& site) const;
  uint64_t fires(const std::string& site) const;

  /// True while at least one site is armed anywhere. This is the macros'
  /// entire fast path.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  // Slow path entry points used by the macros; call only behind AnyArmed().
  Status Check(const char* site);
  bool CheckDeny(const char* site);

 private:
  struct SiteState {
    FailpointPolicy policy;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  FailpointRegistry() = default;
  /// Mutates the hit/fire counters of a site in sites_, so the registry
  /// lock must be held.
  bool ShouldFire(SiteState* state) REQUIRES(mu_);

  static std::atomic<int> armed_count_;
  /// Guards the site map (policies and hit/fire counters).
  mutable Mutex mu_;
  std::map<std::string, SiteState> sites_ GUARDED_BY(mu_);
};

/// RAII arming: arms `site` on construction, disarms it on destruction.
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, FailpointPolicy policy)
      : site_(std::move(site)) {
    FailpointRegistry::Global().Arm(site_, std::move(policy));
  }
  ~ScopedFailpoint() { FailpointRegistry::Global().Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Site catalog — one entry per RELDIV_FAILPOINT site compiled into the
/// tree, with the failure it simulates. tools/lint.py enforces that the
/// macros and this list stay in sync (failpoint-site / failpoint-coverage).
inline constexpr const char* kFailpointSites[] = {
    "sim_disk/read",          // SimDisk::Read transfer error
    "sim_disk/write",         // SimDisk::Write transfer error
    "sim_disk/seek",          // arm movement fails (checked when it moves)
    "buffer/fix",             // BufferManager::Fix page-pin failure
    "memory/reserve",         // MemoryPool::Reserve denied (§3.4 trigger)
    "virtual_device/append",  // VirtualDevice::Append failure
    "extent_file/append",     // RecordFile fresh-page extent growth failure
    "network/send",           // Interconnect shipment lost on send
    "network/recv",           // Interconnect shipment lost on receive
};

}  // namespace reldiv

/// Error-injection site: in a function returning Status (or Result<T>),
/// returns the injected error when `site` is armed and its policy fires.
/// Disabled cost: one relaxed atomic load.
#define RELDIV_FAILPOINT(site)                                              \
  do {                                                                      \
    if (__builtin_expect(::reldiv::FailpointRegistry::AnyArmed(), 0)) {     \
      ::reldiv::Status reldiv_failpoint_status_ =                           \
          ::reldiv::FailpointRegistry::Global().Check(site);                \
      if (!reldiv_failpoint_status_.ok()) return reldiv_failpoint_status_;  \
    }                                                                       \
  } while (0)

/// Verdict-injection site: boolean expression, true when the armed policy
/// fires — used where failure is a denial rather than a Status (memory
/// grants). Disabled cost: one relaxed atomic load.
#define RELDIV_FAILPOINT_DENIED(site)                     \
  (__builtin_expect(::reldiv::FailpointRegistry::AnyArmed(), 0) && \
   ::reldiv::FailpointRegistry::Global().CheckDeny(site))

#endif  // RELDIV_TESTING_FAILPOINT_H_
