#include "testing/failpoint.h"

namespace reldiv {

namespace {

/// SplitMix64 expansion of a seed into xorshift128+ state (same scheme as
/// common/rng.h, inlined here so the registry owns plain POD state).
void SeedRngState(uint64_t seed, uint64_t* s0, uint64_t* s1) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  *s0 = z ^ (z >> 27);
  z = *s0 + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  *s1 = z ^ (z >> 27);
  if (*s0 == 0 && *s1 == 0) *s1 = 1;
}

uint64_t NextRng(uint64_t* s0, uint64_t* s1) {
  uint64_t x = *s0;
  const uint64_t y = *s1;
  *s0 = y;
  x ^= x << 23;
  *s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
  return *s1 + y;
}

}  // namespace

std::atomic<int> FailpointRegistry::armed_count_{0};

FailpointRegistry& FailpointRegistry::Global() {
  // Intentionally leaked so late-destroyed threads can still consult it.
  static FailpointRegistry* registry =
      new FailpointRegistry();  // NOLINT(reldiv/naked-new)
  return *registry;
}

void FailpointRegistry::Arm(const std::string& site, FailpointPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  state.armed = true;
  state.hits = 0;
  state.fires = 0;
  if (policy.trigger == FailpointPolicy::Trigger::kProbability) {
    SeedRngState(policy.seed, &state.rng_s0, &state.rng_s1);
  }
  state.policy = std::move(policy);
}

void FailpointRegistry::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return;
  it->second.armed = false;
  armed_count_.fetch_sub(1, std::memory_order_relaxed);
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, state] : sites_) {
    if (state.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  sites_.clear();
}

uint64_t FailpointRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FailpointRegistry::fires(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

bool FailpointRegistry::ShouldFire(SiteState* state) {
  state->hits++;
  bool fire = false;
  switch (state->policy.trigger) {
    case FailpointPolicy::Trigger::kNever:
      break;
    case FailpointPolicy::Trigger::kAlways:
      fire = true;
      break;
    case FailpointPolicy::Trigger::kOnNthHit:
      fire = state->hits == state->policy.n;
      break;
    case FailpointPolicy::Trigger::kProbability:
      fire = NextRng(&state->rng_s0, &state->rng_s1) % 100 <
             state->policy.percent;
      break;
  }
  if (fire) state->fires++;
  return fire;
}

Status FailpointRegistry::Check(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return Status::OK();
  SiteState& state = it->second;
  if (!ShouldFire(&state)) return Status::OK();
  std::string message = "failpoint '" + std::string(site) + "' fired";
  if (!state.policy.message.empty()) message += ": " + state.policy.message;
  return Status(state.policy.code, std::move(message));
}

bool FailpointRegistry::CheckDeny(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  return ShouldFire(&it->second);
}

}  // namespace reldiv
