#include "common/bitmap.h"

namespace reldiv {

Bitmap::Bitmap(size_t num_bits)
    : num_bits_(num_bits), owned_(WordsForBits(num_bits), 0) {
  words_ = owned_.data();
}

void Bitmap::ClearAll() {
  const size_t words = WordsForBits(num_bits_);
  for (size_t i = 0; i < words; ++i) words_[i] = 0;
}

bool Bitmap::AllSet() const {
  if (num_bits_ == 0) return true;
  const size_t full_words = num_bits_ / 64;
  for (size_t i = 0; i < full_words; ++i) {
    if (words_[i] != ~uint64_t{0}) return false;
  }
  const size_t tail = num_bits_ & 63;
  if (tail != 0) {
    const uint64_t mask = (uint64_t{1} << tail) - 1;
    if ((words_[full_words] & mask) != mask) return false;
  }
  return true;
}

size_t Bitmap::CountSet() const {
  size_t count = 0;
  const size_t words = WordsForBits(num_bits_);
  for (size_t i = 0; i < words; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(words_[i]));
  }
  return count;
}

void Bitmap::IntersectWith(const Bitmap& other) {
  // Width agreement is the §3.4 collection-phase invariant: both maps were
  // built against the same divisor cardinality. Cold path, so always on.
  RELDIV_CHECK_EQ(num_bits_, other.num_bits_)
      << "intersecting bit maps of different divisor cardinalities";
  const size_t words = WordsForBits(num_bits_);
  for (size_t i = 0; i < words; ++i) words_[i] &= other.words_[i];
}

std::string Bitmap::ToString() const {
  std::string out;
  out.reserve(num_bits_);
  for (size_t i = 0; i < num_bits_; ++i) out += Test(i) ? '1' : '0';
  return out;
}

}  // namespace reldiv
