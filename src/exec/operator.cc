#include "exec/operator.h"

#include "common/metric_names.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"

namespace reldiv {

namespace {

/// A non-OK status surfacing at a query root is exactly the moment the
/// flight recorder exists for: note it (with the failing stage) so a later
/// dump shows what the query died of, and count it process-wide.
void RecordRootFailure(const char* stage, const Status& status) {
  if (!Telemetry::counting()) return;
  static TelemetryCounter* failures =
      MetricRegistry::Global().FindOrCreateCounter(
          metric_names::kQueryFailuresTotal);
  failures->Add(1);
  FlightRecorder::Global().Record(FlightEventCategory::kStatus, stage,
                                  status.message());
}

}  // namespace

Status Operator::NextBatch(TupleBatch* batch, bool* has_more) {
  batch->Clear();
  while (!batch->full()) {
    Tuple* slot = batch->AddSlot();
    bool has_next = false;
    RELDIV_RETURN_NOT_OK(Next(slot, &has_next));
    if (!has_next) {
      // Give the unused slot back; the stream ended inside this batch, so
      // per the contract this batch is the last one.
      batch->PopBack();
      *has_more = false;
      return Status::OK();
    }
  }
  *has_more = true;
  return Status::OK();
}

Result<std::vector<Tuple>> CollectAll(Operator* op, size_t batch_capacity) {
  const auto drive = [&]() -> Result<std::vector<Tuple>> {
    std::vector<Tuple> out;
    RELDIV_RETURN_NOT_OK(op->Open());
    TupleBatch batch(batch_capacity);
    bool has_more = true;
    while (has_more) {
      RELDIV_RETURN_NOT_OK(op->NextBatch(&batch, &has_more));
      for (Tuple& tuple : batch) out.push_back(std::move(tuple));
    }
    RELDIV_RETURN_NOT_OK(op->Close());
    return out;
  };
  Result<std::vector<Tuple>> result = drive();
  if (!result.ok()) RecordRootFailure("collect_all", result.status());
  return result;
}

Result<std::vector<Tuple>> CollectAllTupleAtATime(Operator* op) {
  const auto drive = [&]() -> Result<std::vector<Tuple>> {
    std::vector<Tuple> out;
    RELDIV_RETURN_NOT_OK(op->Open());
    while (true) {
      Tuple tuple;
      bool has_next = false;
      RELDIV_RETURN_NOT_OK(op->Next(&tuple, &has_next));
      if (!has_next) break;
      out.push_back(std::move(tuple));
    }
    RELDIV_RETURN_NOT_OK(op->Close());
    return out;
  };
  Result<std::vector<Tuple>> result = drive();
  if (!result.ok()) RecordRootFailure("collect_all_tuple", result.status());
  return result;
}

}  // namespace reldiv
