#ifndef RELDIV_COMMON_SCHEMA_H_
#define RELDIV_COMMON_SCHEMA_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace reldiv {

/// One column of a relation: a name and a type.
struct Field {
  std::string name;
  ValueType type = ValueType::kInt64;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// Ordered list of fields describing the layout of a relation's tuples.
/// Schemas are value types and cheap to copy for the narrow relations this
/// library works with.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field with `name`, or NotFound.
  Result<size_t> FieldIndex(const std::string& name) const;

  /// Indices of all `names`, in the given order; NotFound if any is missing.
  Result<std::vector<size_t>> FieldIndices(
      const std::vector<std::string>& names) const;

  /// Schema containing only the fields at `indices`, in that order.
  Schema Project(const std::vector<size_t>& indices) const;

  /// The complement of `indices` in declaration order (used to derive the
  /// quotient attributes as "dividend attributes not in the divisor").
  std::vector<size_t> ComplementIndices(
      const std::vector<size_t>& indices) const;

  /// "(name:type, ...)" for diagnostics.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace reldiv

#endif  // RELDIV_COMMON_SCHEMA_H_
