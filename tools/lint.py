#!/usr/bin/env python3
"""Repo-specific lints for the reldiv tree.

Purely syntactic hygiene checks that clang-tidy cannot express (or that
must run without a compiler). Semantic project contracts — physical-op
accounting, kernel purity, mutex GUARDED_BY coverage, failpoint catalog
sync, raw-thread and naked-new ownership rules — live in tools/analyze.py,
whose suppressions additionally require a written rationale.

  bare-assert       `assert(...)` in src/ — use RELDIV_CHECK / RELDIV_DCHECK
                    (common/check.h) so the intent survives NDEBUG builds
                    deliberately. static_assert is fine.
  include-guard     every header under src/ must open with the canonical
                    `RELDIV_<DIR>_<FILE>_H_` guard (#ifndef + #define).
  no-rand           `rand()` / `srand()` / `std::rand` — experiments must be
                    reproducible; use common/rng.h (deterministic
                    xorshift128+) instead.
  batch-overrides   a class overriding `NextBatch` is a batch-native
                    operator and must also override `Open` and `Close`: a
                    batch-native stream carries state that Open must reset
                    and Close must release (see exec/operator.h).
  kernel-virtual-next  code under src/exec/kernels/ must not call the
                    virtual Operator::NextBatch — kernels are the layer
                    BELOW the operator tree (plain loops over plain arrays)
                    and must stay linkable without exec/operator.h, so the
                    fused pipelines can inline them without pulling in
                    virtual dispatch.
  fused-value-access  per-tuple Value access (`.value(i)` / `->value(i)`)
                    inside src/exec/fused/ — fused loop bodies must go
                    through the batched kernels (column extraction, batched
                    compare/hash), not re-introduce a tuple-at-a-time
                    interpreter under the fused label. Setup/fallback code
                    may annotate NOLINT(reldiv/fused-value-access) with a
                    reason.

Usage: tools/lint.py [--root DIR]
Exit status: 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

SOURCE_DIRS = ("src",)
HEADER_SUFFIX = ".h"
SOURCE_SUFFIXES = (".h", ".cc")

NOLINT_RE = re.compile(r"NOLINT\(reldiv/([a-z-]+)\)")
NOLINTNEXTLINE_RE = re.compile(r"NOLINTNEXTLINE\(reldiv/([a-z-]+)\)")


def strip_comments_and_strings(line: str) -> str:
    """Removes // comments and string/char literals so lint regexes do not
    fire on prose or examples. (Block comments are handled per-file.)"""
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in ("\"", "'"):
            quote = c
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    break
                i += 1
            out.append(quote + quote)
        else:
            out.append(c)
        i += 1
    return "".join(out)


def mask_block_comments(text: str) -> str:
    """Blanks /* ... */ regions (keeps newlines so line numbers hold)."""

    def blank(match: re.Match) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    return re.sub(r"/\*.*?\*/", blank, text, flags=re.DOTALL)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, path: Path, lineno: int, check: str, message: str):
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{lineno}: [{check}] {message}")

    # --- per-line checks -------------------------------------------------

    BARE_ASSERT_RE = re.compile(r"(?<![_\w])assert\s*\(")
    RAND_RE = re.compile(r"(?:std::)?\b(?:rand|srand)\s*\(")
    KERNEL_NEXTBATCH_RE = re.compile(r"(?:\.|->)\s*NextBatch\s*\(")
    FUSED_VALUE_RE = re.compile(r"(?:\.|->)\s*value\s*\(")

    def lint_lines(self, path: Path, text: str):
        rel = str(path.relative_to(self.root))
        carried: set[str] = set()
        for lineno, raw in enumerate(text.splitlines(), start=1):
            suppressed = set(NOLINT_RE.findall(raw)) | carried
            carried = set(NOLINTNEXTLINE_RE.findall(raw))
            line = strip_comments_and_strings(raw)
            if self.BARE_ASSERT_RE.search(line) and "static_assert" not in line:
                if "bare-assert" not in suppressed:
                    self.report(path, lineno, "bare-assert",
                                "use RELDIV_CHECK/RELDIV_DCHECK from "
                                "common/check.h instead of assert()")
            if self.RAND_RE.search(line) and "no-rand" not in suppressed:
                self.report(path, lineno, "no-rand",
                            "non-deterministic libc RNG; use common/rng.h "
                            "(seeded xorshift128+) for reproducibility")
            if (rel.startswith("src/exec/kernels/")
                    and self.KERNEL_NEXTBATCH_RE.search(line)
                    and "kernel-virtual-next" not in suppressed):
                self.report(path, lineno, "kernel-virtual-next",
                            "virtual NextBatch call inside the kernel "
                            "layer; kernels sit below the operator tree "
                            "and take plain arrays, never Operators")
            if (rel.startswith("src/exec/fused/")
                    and self.FUSED_VALUE_RE.search(line)
                    and "fused-value-access" not in suppressed):
                self.report(path, lineno, "fused-value-access",
                            "per-tuple Value access in a fused pipeline; "
                            "use the batched kernels (ExtractInt64Column, "
                            "CompareInt64, HashInt64Keys) or annotate "
                            "NOLINT(reldiv/fused-value-access) with a "
                            "reason")

    # --- include guards --------------------------------------------------

    def expected_guard(self, path: Path) -> str:
        rel = path.relative_to(self.root / "src")
        stem = "_".join(rel.parts[:-1] + (rel.stem,))
        return "RELDIV_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"

    def lint_include_guard(self, path: Path, text: str):
        guard = self.expected_guard(path)
        lines = text.splitlines()
        head = [l.strip() for l in lines[:5] if l.strip()]
        if (len(head) < 2 or head[0] != f"#ifndef {guard}"
                or head[1] != f"#define {guard}"):
            self.report(path, 1, "include-guard",
                        f"header must open with '#ifndef {guard}' / "
                        f"'#define {guard}'")

    # --- batch-native operators must override Open/Close ------------------

    CLASS_RE = re.compile(r"\bclass\s+([A-Za-z_]\w*)[^;{]*\{")

    def class_bodies(self, text: str):
        """Yields (class name, body text) using brace matching."""
        for match in self.CLASS_RE.finditer(text):
            depth = 1
            i = match.end()
            while i < len(text) and depth > 0:
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                i += 1
            yield match.group(1), text[match.end():i]

    NEXTBATCH_RE = re.compile(r"\bNextBatch\s*\([^)]*\)\s*override")
    OPEN_RE = re.compile(r"\bOpen\s*\(\s*\)\s*override")
    CLOSE_RE = re.compile(r"\bClose\s*\(\s*\)\s*override")

    def lint_batch_overrides(self, path: Path, text: str):
        # Line comments can mention "class X" in prose; scan code only.
        # NOLINT markers survive because they sit inside the class body text
        # checked below before stripping.
        stripped = "\n".join(
            line if "NOLINT" in line else strip_comments_and_strings(line)
            for line in text.splitlines())
        for name, body in self.class_bodies(stripped):
            if not self.NEXTBATCH_RE.search(body):
                continue
            if "batch-overrides" in "".join(NOLINT_RE.findall(body)):
                continue
            missing = [label for label, rx in (("Open", self.OPEN_RE),
                                               ("Close", self.CLOSE_RE))
                       if not rx.search(body)]
            if missing:
                lineno = text[:text.find(body)].count("\n") + 1
                self.report(path, lineno, "batch-overrides",
                            f"class {name} overrides NextBatch but not "
                            f"{'/'.join(missing)}; batch-native operators "
                            "must manage their stream state explicitly")

    # --- driver ----------------------------------------------------------

    def run(self) -> int:
        files = []
        for d in SOURCE_DIRS:
            files.extend(sorted((self.root / d).rglob("*")))
        for path in files:
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            text = mask_block_comments(path.read_text(encoding="utf-8"))
            self.lint_lines(path, text)
            if path.suffix == HEADER_SUFFIX:
                self.lint_include_guard(path, text)
                self.lint_batch_overrides(path, text)
        for finding in self.findings:
            print(finding)
        print(f"lint.py: {len(self.findings)} finding(s)")
        return 1 if self.findings else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=str(Path(__file__).resolve().parent.parent),
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()
    return Linter(Path(args.root)).run()


if __name__ == "__main__":
    sys.exit(main())
