#include "exec/sort.h"

#include <algorithm>
#include <cstring>

#include "common/config.h"
#include "exec/exchange.h"
#include "exec/kernels/kernels.h"
#include "exec/scheduler.h"

namespace reldiv {

namespace {

/// Tuple memory estimate used for sort-space accounting.
size_t EstimateTupleBytes(const Tuple& tuple) {
  size_t bytes = 24 + 16 * tuple.size();
  for (size_t i = 0; i < tuple.size(); ++i) {
    if (tuple.value(i).type() == ValueType::kString) {
      bytes += tuple.value(i).string_value().size();
    }
  }
  return bytes;
}

}  // namespace

/// One sorted run on the simulated disk, written and read in 1 KB blocks
/// (kSortRunBlockSize) so that a limited sort space still yields a high
/// merge fan-in. Sectors are allocated in contiguous chunks.
class SortOperator::Run {
 public:
  explicit Run(SimDisk* disk) : disk_(disk) {}

  Status Append(Slice record) {
    uint32_t len = static_cast<uint32_t>(record.size());
    char len_buf[4];
    std::memcpy(len_buf, &len, 4);
    RELDIV_RETURN_NOT_OK(WriteBytes(len_buf, 4));
    RELDIV_RETURN_NOT_OK(WriteBytes(record.data(), record.size()));
    num_records_++;
    return Status::OK();
  }

  Status Finish() {
    if (buffer_used_ > 0) {
      RELDIV_RETURN_NOT_OK(FlushBlock());
    }
    return Status::OK();
  }

  uint64_t num_records() const { return num_records_; }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  friend class SortOperator::RunReader;

  static constexpr uint64_t kSectorsPerAllocation = 64;

  Status WriteBytes(const char* data, size_t size) {
    total_bytes_ += size;
    while (size > 0) {
      const size_t room = kSortRunBlockSize - buffer_used_;
      const size_t chunk = size < room ? size : room;
      std::memcpy(buffer_ + buffer_used_, data, chunk);
      buffer_used_ += chunk;
      data += chunk;
      size -= chunk;
      if (buffer_used_ == kSortRunBlockSize) {
        RELDIV_RETURN_NOT_OK(FlushBlock());
      }
    }
    return Status::OK();
  }

  Status FlushBlock() {
    if (next_sector_ == end_sector_) {
      const uint64_t first = disk_->AllocateSectors(kSectorsPerAllocation);
      segments_.emplace_back(first, kSectorsPerAllocation);
      next_sector_ = first;
      end_sector_ = first + kSectorsPerAllocation;
    }
    // Pad the trailing partial block with zeros.
    if (buffer_used_ < kSortRunBlockSize) {
      std::memset(buffer_ + buffer_used_, 0, kSortRunBlockSize - buffer_used_);
    }
    RELDIV_RETURN_NOT_OK(disk_->Write(next_sector_, 1, buffer_));
    next_sector_++;
    blocks_written_++;
    buffer_used_ = 0;
    return Status::OK();
  }

  SimDisk* disk_;
  char buffer_[kSortRunBlockSize];
  size_t buffer_used_ = 0;
  uint64_t num_records_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t blocks_written_ = 0;
  uint64_t next_sector_ = 0;
  uint64_t end_sector_ = 0;
  std::vector<std::pair<uint64_t, uint64_t>> segments_;
};

/// Sequential reader over a Run, one 1 KB block in memory at a time.
class SortOperator::RunReader {
 public:
  RunReader(SimDisk* disk, const Run* run) : disk_(disk), run_(run) {}

  /// Reads the next encoded record into `record`.
  Status Next(std::string* record, bool* has_next) {
    if (bytes_read_ >= run_->total_bytes_) {
      *has_next = false;
      return Status::OK();
    }
    char len_buf[4];
    RELDIV_RETURN_NOT_OK(ReadBytes(len_buf, 4));
    uint32_t len;
    std::memcpy(&len, len_buf, 4);
    record->resize(len);
    RELDIV_RETURN_NOT_OK(ReadBytes(record->data(), len));
    *has_next = true;
    return Status::OK();
  }

 private:
  Status ReadBytes(char* dst, size_t size) {
    while (size > 0) {
      if (buffer_pos_ == buffer_filled_) {
        RELDIV_RETURN_NOT_OK(FillBlock());
      }
      const size_t avail = buffer_filled_ - buffer_pos_;
      const size_t chunk = size < avail ? size : avail;
      std::memcpy(dst, buffer_ + buffer_pos_, chunk);
      buffer_pos_ += chunk;
      dst += chunk;
      size -= chunk;
      bytes_read_ += chunk;
    }
    return Status::OK();
  }

  Status FillBlock() {
    if (segment_index_ >= run_->segments_.size()) {
      return Status::Internal("sort run reader ran past the last block");
    }
    auto [first, count] = run_->segments_[segment_index_];
    RELDIV_RETURN_NOT_OK(disk_->Read(first + segment_offset_, 1, buffer_));
    segment_offset_++;
    if (segment_offset_ == count) {
      segment_index_++;
      segment_offset_ = 0;
    }
    buffer_pos_ = 0;
    buffer_filled_ = kSortRunBlockSize;
    return Status::OK();
  }

  SimDisk* disk_;
  const Run* run_;
  char buffer_[kSortRunBlockSize];
  size_t buffer_pos_ = 0;
  size_t buffer_filled_ = 0;
  uint64_t bytes_read_ = 0;
  size_t segment_index_ = 0;
  uint64_t segment_offset_ = 0;
};

SortOperator::SortOperator(ExecContext* ctx, std::unique_ptr<Operator> child,
                           SortSpec spec)
    : ctx_(ctx),
      child_(std::move(child)),
      spec_(std::move(spec)),
      working_schema_(spec_.lifted_schema.has_value()
                          ? *spec_.lifted_schema
                          : child_->output_schema()),
      codec_(working_schema_),
      max_fan_in_(
          std::max<size_t>(2, ctx_->sort_space_bytes() / kSortRunBlockSize)) {}

SortOperator::~SortOperator() = default;

int SortOperator::CompareKeys(const Tuple& a, const Tuple& b) const {
  return CompareKeysOn(ctx_, a, b);
}

int SortOperator::CompareKeysOn(ExecContext* ctx, const Tuple& a,
                                const Tuple& b) const {
  ctx->CountComparisons(1);
  return a.CompareAt(spec_.keys, b);
}

uint64_t SortOperator::KeyCode(const Tuple& t) const {
  return spec_.keys.empty() ? 0 : kernels::NormalizedKey(t.value(spec_.keys[0]));
}

int SortOperator::CompareCodedOn(ExecContext* ctx, uint64_t code_a,
                                 const Tuple& a, uint64_t code_b,
                                 const Tuple& b) const {
  ctx->CountComparisons(1);
  if (code_a != code_b) return code_a < code_b ? -1 : 1;
  return a.CompareAt(spec_.keys, b);
}

void SortOperator::Combine(Tuple* acc, const Tuple& next) const {
  if (spec_.merge) {
    spec_.merge(acc, next);
  }
  // Default: keep the first tuple (duplicate elimination).
}

bool SortOperator::HeapLess(const HeapEntry& a, const HeapEntry& b) const {
  const int c = CompareCodedOn(ctx_, a.code, a.tuple, b.code, b.tuple);
  if (c != 0) return c < 0;
  return a.reader < b.reader;  // stable across runs: older run first
}

void SortOperator::HeapPush(HeapEntry entry) {
  heap_.push_back(std::move(entry));
  size_t i = heap_.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) / 2;
    if (!HeapLess(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

SortOperator::HeapEntry SortOperator::HeapPop() {
  HeapEntry top = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  size_t i = 0;
  while (true) {
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    size_t smallest = i;
    if (l < heap_.size() && HeapLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < heap_.size() && HeapLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) break;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
  return top;
}

Status SortOperator::SortChunk(ExecContext* ctx,
                               std::vector<Tuple>* chunk) const {
  // Normalized-key quicksort (Do/Graefe/Naughton): each tuple's first sort
  // key is encoded once into an order-preserving code, and most comparisons
  // resolve on one integer compare; only code-equal pairs pay the full key
  // comparison. CompareCodedOn is extensionally equal to CompareKeysOn and
  // counts identically, so the sort's decision sequence, the run contents,
  // and the Comp totals are those of the uncoded sort.
  struct Keyed {
    uint64_t code;
    Tuple tuple;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(chunk->size());
  for (Tuple& tuple : *chunk) {
    const uint64_t code = KeyCode(tuple);
    keyed.push_back(Keyed{code, std::move(tuple)});
  }
  std::sort(keyed.begin(), keyed.end(),
            [this, ctx](const Keyed& a, const Keyed& b) {
              return CompareCodedOn(ctx, a.code, a.tuple, b.code, b.tuple) < 0;
            });
  if (spec_.collapse_equal_keys && !keyed.empty()) {
    // Combine each equal-key group down to one tuple, in stream. Comparison
    // pattern: every tuple is compared once against its group's accumulator
    // (the group-closing mismatch included), matching the merge paths'
    // counting.
    std::vector<Keyed> collapsed;
    collapsed.reserve(keyed.size());
    for (size_t i = 0; i < keyed.size(); ++i) {
      if (i + 1 < keyed.size()) {
        Keyed acc = std::move(keyed[i]);
        size_t j = i + 1;
        while (j < keyed.size() &&
               CompareCodedOn(ctx, acc.code, acc.tuple, keyed[j].code,
                              keyed[j].tuple) == 0) {
          Combine(&acc.tuple, keyed[j].tuple);
          j++;
        }
        i = j - 1;
        collapsed.push_back(std::move(acc));
      } else {
        collapsed.push_back(std::move(keyed[i]));
      }
    }
    keyed = std::move(collapsed);
  }
  chunk->clear();
  for (Keyed& k : keyed) chunk->push_back(std::move(k.tuple));
  return Status::OK();
}

Status SortOperator::WriteSortedRun(std::vector<Tuple>* chunk) {
  auto run = std::make_unique<Run>(ctx_->disk());
  std::string encoded;
  for (const Tuple& tuple : *chunk) {
    encoded.clear();
    RELDIV_RETURN_NOT_OK(codec_.Encode(tuple, &encoded));
    RELDIV_RETURN_NOT_OK(run->Append(Slice(encoded)));
    ctx_->CountMoveBytes(encoded.size());
  }
  RELDIV_RETURN_NOT_OK(run->Finish());
  runs_.push_back(std::move(run));
  chunk->clear();
  return Status::OK();
}

Status SortOperator::FlushChunkWindow(
    std::vector<std::vector<Tuple>>* window) {
  if (window->empty()) return Status::OK();
  const size_t num_chunks = window->size();
  // Chunk contents were fixed by the sort-space accounting in Open(); only
  // the sorting of the chunks held in this window runs concurrently. Runs
  // are written below, serially and in chunk order, so the on-disk layout
  // never depends on the worker count.
  FragmentContexts fragment_ctxs(ctx_, num_chunks);
  Status status = TaskScheduler::Global().ParallelFor(
      std::min(ctx_->dop(), num_chunks), num_chunks, [&](size_t i) -> Status {
        return SortChunk(fragment_ctxs.fragment(i), &(*window)[i]);
      });
  fragment_ctxs.MergeInto(ctx_);
  RELDIV_RETURN_NOT_OK(status);
  for (std::vector<Tuple>& chunk : *window) {
    RELDIV_RETURN_NOT_OK(WriteSortedRun(&chunk));
    initial_runs_++;
  }
  window->clear();
  return Status::OK();
}

Status SortOperator::MergeRuns(std::vector<std::unique_ptr<Run>> inputs) {
  std::vector<std::unique_ptr<RunReader>> readers;
  readers.reserve(inputs.size());
  for (const auto& run : inputs) {
    readers.push_back(std::make_unique<RunReader>(ctx_->disk(), run.get()));
  }
  std::vector<HeapEntry> saved_heap;
  std::swap(saved_heap, heap_);

  std::string record;
  for (size_t i = 0; i < readers.size(); ++i) {
    bool has = false;
    RELDIV_RETURN_NOT_OK(readers[i]->Next(&record, &has));
    if (!has) continue;
    HeapEntry entry;
    entry.reader = i;
    RELDIV_RETURN_NOT_OK(codec_.Decode(Slice(record), &entry.tuple));
    entry.code = KeyCode(entry.tuple);
    HeapPush(std::move(entry));
  }

  auto output = std::make_unique<Run>(ctx_->disk());
  std::string encoded;
  bool have_acc = false;
  Tuple acc;
  uint64_t acc_code = 0;
  auto flush_acc = [&]() -> Status {
    if (!have_acc) return Status::OK();
    encoded.clear();
    RELDIV_RETURN_NOT_OK(codec_.Encode(acc, &encoded));
    ctx_->CountMoveBytes(encoded.size());
    return output->Append(Slice(encoded));
  };

  while (!heap_.empty()) {
    HeapEntry top = HeapPop();
    bool has = false;
    RELDIV_RETURN_NOT_OK(readers[top.reader]->Next(&record, &has));
    if (has) {
      HeapEntry refill;
      refill.reader = top.reader;
      RELDIV_RETURN_NOT_OK(codec_.Decode(Slice(record), &refill.tuple));
      refill.code = KeyCode(refill.tuple);
      HeapPush(std::move(refill));
    }
    if (spec_.collapse_equal_keys) {
      if (have_acc &&
          CompareCodedOn(ctx_, acc_code, acc, top.code, top.tuple) == 0) {
        Combine(&acc, top.tuple);
      } else {
        RELDIV_RETURN_NOT_OK(flush_acc());
        acc = std::move(top.tuple);
        acc_code = top.code;
        have_acc = true;
      }
    } else {
      encoded.clear();
      RELDIV_RETURN_NOT_OK(codec_.Encode(top.tuple, &encoded));
      ctx_->CountMoveBytes(encoded.size());
      RELDIV_RETURN_NOT_OK(output->Append(Slice(encoded)));
    }
  }
  RELDIV_RETURN_NOT_OK(flush_acc());
  RELDIV_RETURN_NOT_OK(output->Finish());

  std::swap(saved_heap, heap_);
  runs_.push_back(std::move(output));
  return Status::OK();
}

Status SortOperator::OpenFinalMerge() {
  final_readers_.clear();
  heap_.clear();
  std::string record;
  for (size_t i = 0; i < runs_.size(); ++i) {
    final_readers_.push_back(
        std::make_unique<RunReader>(ctx_->disk(), runs_[i].get()));
    bool has = false;
    RELDIV_RETURN_NOT_OK(final_readers_[i]->Next(&record, &has));
    if (!has) continue;
    HeapEntry entry;
    entry.reader = i;
    RELDIV_RETURN_NOT_OK(codec_.Decode(Slice(record), &entry.tuple));
    entry.code = KeyCode(entry.tuple);
    HeapPush(std::move(entry));
  }
  return Status::OK();
}

Status SortOperator::Open() {
  RELDIV_RETURN_NOT_OK(child_->Open());
  child_open_ = true;

  std::vector<Tuple> batch;
  size_t batch_bytes = 0;
  bool input_exhausted = false;
  bool first_batch = true;
  // Spilled chunks awaiting sort + run write; flushed whenever dop chunks
  // have accumulated, so at most dop sort spaces are held at once.
  std::vector<std::vector<Tuple>> window;

  while (!input_exhausted) {
    Tuple raw;
    bool has = false;
    RELDIV_RETURN_NOT_OK(child_->Next(&raw, &has));
    if (!has) {
      input_exhausted = true;
    } else {
      Tuple working = spec_.lift ? spec_.lift(raw) : std::move(raw);
      batch_bytes += EstimateTupleBytes(working);
      batch.push_back(std::move(working));
    }
    const bool batch_full = batch_bytes >= ctx_->sort_space_bytes();
    if ((input_exhausted || batch_full) && (!batch.empty() || first_batch)) {
      if (first_batch && input_exhausted) {
        // Whole input fits in the sort space: the normalized-key in-memory
        // sort (+ collapse), no I/O. SortChunk's collapse compares every
        // tuple once against its group's accumulator — the same count as
        // the adjacent-pair loop this path used before the kernelization.
        RELDIV_RETURN_NOT_OK(SortChunk(ctx_, &batch));
        memory_tuples_ = std::move(batch);
        in_memory_ = true;
        memory_pos_ = 0;
        break;
      }
      if (!batch.empty()) {
        window.push_back(std::move(batch));
        batch.clear();
        batch_bytes = 0;
        if (window.size() >= ctx_->dop()) {
          RELDIV_RETURN_NOT_OK(FlushChunkWindow(&window));
        }
      }
      first_batch = false;
    }
  }
  RELDIV_RETURN_NOT_OK(FlushChunkWindow(&window));
  // One Close() attempt settles the debt even if it fails — a second call
  // on an already-failed child is not owed anything.
  child_open_ = false;
  RELDIV_RETURN_NOT_OK(child_->Close());

  if (!in_memory_) {
    // Intermediate merges until one final merge step remains (footnote 2).
    while (runs_.size() > max_fan_in_) {
      std::vector<std::unique_ptr<Run>> group;
      const size_t take = std::min(max_fan_in_, runs_.size());
      group.assign(std::make_move_iterator(runs_.begin()),
                   std::make_move_iterator(runs_.begin() +
                                           static_cast<long>(take)));
      runs_.erase(runs_.begin(), runs_.begin() + static_cast<long>(take));
      RELDIV_RETURN_NOT_OK(MergeRuns(std::move(group)));
      intermediate_merges_++;
    }
    RELDIV_RETURN_NOT_OK(OpenFinalMerge());
  }
  open_ = true;
  have_pending_ = false;
  return Status::OK();
}

Status SortOperator::RawMergeNext(Tuple* tuple, uint64_t* code,
                                  bool* has_next) {
  if (heap_.empty()) {
    *has_next = false;
    return Status::OK();
  }
  HeapEntry top = HeapPop();
  std::string record;
  bool has = false;
  RELDIV_RETURN_NOT_OK(final_readers_[top.reader]->Next(&record, &has));
  if (has) {
    HeapEntry refill;
    refill.reader = top.reader;
    RELDIV_RETURN_NOT_OK(codec_.Decode(Slice(record), &refill.tuple));
    refill.code = KeyCode(refill.tuple);
    HeapPush(std::move(refill));
  }
  *tuple = std::move(top.tuple);
  *code = top.code;
  *has_next = true;
  return Status::OK();
}

Status SortOperator::Next(Tuple* tuple, bool* has_next) {
  if (!open_) return Status::Internal("sort Next() before Open()");
  if (in_memory_) {
    if (memory_pos_ >= memory_tuples_.size()) {
      *has_next = false;
      return Status::OK();
    }
    *tuple = std::move(memory_tuples_[memory_pos_++]);
    *has_next = true;
    return Status::OK();
  }
  if (!spec_.collapse_equal_keys) {
    uint64_t code = 0;
    return RawMergeNext(tuple, &code, has_next);
  }
  // Group-collapse on the final merge output.
  while (true) {
    Tuple next;
    uint64_t next_code = 0;
    bool has = false;
    RELDIV_RETURN_NOT_OK(RawMergeNext(&next, &next_code, &has));
    if (!has) {
      if (have_pending_) {
        *tuple = std::move(pending_);
        have_pending_ = false;
        *has_next = true;
        return Status::OK();
      }
      *has_next = false;
      return Status::OK();
    }
    if (!have_pending_) {
      pending_ = std::move(next);
      pending_code_ = next_code;
      have_pending_ = true;
      continue;
    }
    if (CompareCodedOn(ctx_, pending_code_, pending_, next_code, next) == 0) {
      Combine(&pending_, next);
      continue;
    }
    *tuple = std::move(pending_);
    pending_ = std::move(next);
    pending_code_ = next_code;
    *has_next = true;
    return Status::OK();
  }
}

Status SortOperator::Close() {
  Status status;
  if (child_open_) {
    // Open() failed while draining the input; the child still holds its
    // resources (pinned pages, open scans) and must be closed here.
    child_open_ = false;
    status = child_->Close();
  }
  memory_tuples_.clear();
  final_readers_.clear();
  heap_.clear();
  runs_.clear();
  open_ = false;
  return status;
}

}  // namespace reldiv
