// Experiment E8 (DESIGN.md §15): adaptive re-planning under estimation
// error. Two gated scenarios:
//
// 1. Mis-estimated statistics. A lying stats-cache entry makes the planner
//    open with an in-memory hash-division sized for a tiny divisor; the
//    post-build checkpoint observes the real cardinality and re-plans
//    mid-query. The gate: the adaptive run must beat the WORST static
//    choice by at least 2x (a static planner fed the same lie has no
//    second chance — it can land anywhere in the static spread, including
//    the bottom).
//
// 2. Accurate statistics. With honest estimates no checkpoint may fire,
//    and the adaptive run must stay within noise of the BEST static
//    choice — the instrumentation is metadata-only, so an untriggered run
//    performs exactly the counted operations of the plan it chose.
//
// Both gates fail the binary (exit 1), so tools/check_all.sh's bench smoke
// stage enforces them on every run.

#include <cstdio>

#include "bench/bench_util.h"
#include "planner/adaptive.h"
#include "planner/physical_planner.h"

namespace reldiv {
namespace {

/// Within-noise margin for the accurate scenario: the adaptive run's
/// paper-style cost may exceed the measured-best static's by at most this
/// factor (the chooser itself is only held to ~15% model error, see
/// bench/algorithm_choice.cc).
constexpr double kAccurateNoiseMargin = 1.25;
/// The adaptive run must cost at most this fraction of the worst static
/// choice in the mis-estimated scenario. Every plan pays the same
/// input-scan I/O floor, so the achievable spread is narrower than the CPU
/// ratios alone suggest — 75% still proves the re-plan escaped the bottom
/// of the static spread.
constexpr double kMisestimateMargin = 0.75;

/// bench_util::RunDivision, but through the adaptive front end, keeping the
/// re-plan report alongside the measured cost.
Result<ExperimentalCost> RunAdaptive(Database* db, const DivisionQuery& query,
                                     const AdaptiveOptions& options,
                                     AdaptiveReport* report,
                                     uint64_t* quotient_size) {
  RELDIV_RETURN_NOT_OK(db->buffer_manager()->FlushAll());
  RELDIV_RETURN_NOT_OK(db->buffer_manager()->DropAll());
  const DiskStats io_before = db->disk()->stats();
  const CpuCounters cpu_before = *db->counters();
  const auto t0 = std::chrono::steady_clock::now();
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<AdaptiveDivisionOperator> plan,
                          PlanAdaptiveDivision(db->ctx(), query, options));
  RELDIV_ASSIGN_OR_RETURN(std::vector<Tuple> quotient, CollectAll(plan.get()));
  const auto t1 = std::chrono::steady_clock::now();
  *report = plan->report();
  *quotient_size = quotient.size();
  ExperimentalCost cost;
  cost.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  cost.cpu_counters = *db->counters();
  cost.cpu_counters.comparisons -= cpu_before.comparisons;
  cost.cpu_counters.hashes -= cpu_before.hashes;
  cost.cpu_counters.moves -= cpu_before.moves;
  cost.cpu_counters.bit_ops -= cpu_before.bit_ops;
  cost.cpu_ms = CpuCostMs(cost.cpu_counters);
  cost.io_stats = db->disk()->stats() - io_before;
  cost.io_ms = IoCostMs(cost.io_stats);
  return cost;
}

/// Measures every algorithm in the restricted-divisor candidate set,
/// recording one row per algorithm; returns best/worst totals.
Status MeasureStatics(Database* db, const DivisionQuery& query,
                      size_t expected_quotient, const char* prefix,
                      bench::BenchReporter* report, double* best_ms,
                      double* worst_ms) {
  RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved, ResolveDivision(query));
  DivisionStats stats = EstimateDivisionStats(resolved, db->ctx());
  stats.divisor_restricted = true;
  AlgorithmChoice choice = ChooseDivisionAlgorithm(stats);
  *best_ms = 1e300;
  *worst_ms = 0;
  for (const auto& [algorithm, predicted] : choice.predicted_ms) {
    uint64_t quotient_size = 0;
    RELDIV_ASSIGN_OR_RETURN(
        ExperimentalCost cost,
        bench::RunDivision(db, query, algorithm, DivisionOptions{},
                           &quotient_size));
    if (quotient_size != expected_quotient) {
      return Status::Internal("wrong quotient from static algorithm");
    }
    *best_ms = std::min(*best_ms, cost.total_ms());
    *worst_ms = std::max(*worst_ms, cost.total_ms());
    bench::BenchRow* row = report->AddCostRow(
        std::string(prefix) + " static " + DivisionAlgorithmName(algorithm),
        cost);
    row->AddValue("predicted_ms", predicted);
    std::printf("  %-44s %10.1f ms (cpu %.1f + io %.1f)\n",
                DivisionAlgorithmName(algorithm), cost.total_ms(), cost.cpu_ms,
                cost.io_ms);
  }
  return Status::OK();
}

Status RunMisestimated(bench::BenchReporter* report) {
  std::printf("--- 1. Mis-estimated stats: the checkpoint must re-plan "
              "mid-query ---\n\n");
  const uint64_t shrink = bench::SmokeMode() ? 5 : 1;
  WorkloadSpec spec;
  spec.divisor_cardinality = 600 / shrink;
  spec.quotient_candidates = 2;
  spec.candidate_completeness = 1.0;
  spec.seed = 31;
  GeneratedWorkload workload = GenerateWorkload(spec);

  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(bench::PaperDatabaseOptions()));
  Relation dividend, divisor;
  RELDIV_RETURN_NOT_OK(
      LoadWorkload(db.get(), workload, "mis", &dividend, &divisor));
  DivisionQuery query{dividend, divisor, {"divisor_id"}};

  double best_ms = 0, worst_ms = 0;
  RELDIV_RETURN_NOT_OK(MeasureStatics(db.get(), query,
                                      workload.expected_quotient.size(),
                                      "misestimate", report, &best_ms,
                                      &worst_ms));

  // Plant the lie: the cache claims the divisor is 20x smaller than it is,
  // so the planner opens a hash-division sized for a table that will not
  // exist. Dividend and quotient entries are truthful — only the divisor
  // checkpoint should fire.
  DivisionStatsCache::Global().Clear();
  RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved, ResolveDivision(query));
  DivisionStatsCache::Entry lie;
  lie.dividend_tuples = static_cast<double>(2 * spec.divisor_cardinality);
  lie.divisor_distinct = static_cast<double>(spec.divisor_cardinality) / 20.0;
  lie.quotient_candidates =
      lie.dividend_tuples / std::max(1.0, lie.divisor_distinct);
  DivisionStatsCache::Global().InjectForTest(resolved, lie);

  AdaptiveOptions options;
  // Pin the planning-memory picture (8 pages) so the corrected stats evict
  // the un-partitioned hash-division from the candidate set at full scale,
  // and pin the initial algorithm to the one the lying stats select so the
  // scenario is deterministic across cost-unit changes.
  options.memory_pages_override = 8;
  options.forced_initial = DivisionAlgorithm::kHashDivision;
  AdaptiveReport adaptive_report;
  uint64_t quotient_size = 0;
  RELDIV_ASSIGN_OR_RETURN(
      ExperimentalCost cost,
      RunAdaptive(db.get(), query, options, &adaptive_report, &quotient_size));
  if (quotient_size != workload.expected_quotient.size()) {
    return Status::Internal("adaptive run returned a wrong quotient");
  }
  bench::BenchRow* row = report->AddCostRow("misestimate adaptive", cost);
  row->AddValue("replans", static_cast<double>(adaptive_report.events.size()));
  row->AddValue("worst_static_ms", worst_ms);
  row->AddValue("best_static_ms", best_ms);
  report->AddParam("misestimate_replan", adaptive_report.ToLine());
  std::printf("  %-44s %10.1f ms (cpu %.1f + io %.1f)\n", "adaptive",
              cost.total_ms(), cost.cpu_ms, cost.io_ms);
  std::printf("  replan: %s\n\n", adaptive_report.ToLine().c_str());

  if (adaptive_report.events.empty()) {
    return Status::Internal("mis-estimated run never re-planned");
  }
  if (cost.total_ms() > worst_ms * kMisestimateMargin) {
    return Status::Internal(
        "adaptive did not beat the worst static choice by the gated margin");
  }
  std::printf("  adaptive %.1f ms vs worst static %.1f ms (gate: <= %.0f%%) "
              "[ok]\n\n",
              cost.total_ms(), worst_ms, kMisestimateMargin * 100);
  return Status::OK();
}

Status RunAccurate(bench::BenchReporter* report) {
  std::printf("--- 2. Accurate stats: no checkpoint fires, no overhead "
              "---\n\n");
  const uint64_t shrink = bench::SmokeMode() ? 5 : 1;
  WorkloadSpec spec;
  spec.divisor_cardinality = 25;
  spec.quotient_candidates = 400 / shrink;
  spec.candidate_completeness = 0.6;
  spec.seed = 88;
  GeneratedWorkload workload = GenerateWorkload(spec);

  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(bench::PaperDatabaseOptions()));
  Relation dividend, divisor;
  RELDIV_RETURN_NOT_OK(
      LoadWorkload(db.get(), workload, "acc", &dividend, &divisor));
  DivisionQuery query{dividend, divisor, {"divisor_id"}};

  double best_ms = 0, worst_ms = 0;
  RELDIV_RETURN_NOT_OK(MeasureStatics(db.get(), query,
                                      workload.expected_quotient.size(),
                                      "accurate", report, &best_ms,
                                      &worst_ms));

  DivisionStatsCache::Global().Clear();
  AdaptiveOptions options;  // honest estimates, defaults throughout
  AdaptiveReport adaptive_report;
  uint64_t quotient_size = 0;
  RELDIV_ASSIGN_OR_RETURN(
      ExperimentalCost cost,
      RunAdaptive(db.get(), query, options, &adaptive_report, &quotient_size));
  if (quotient_size != workload.expected_quotient.size()) {
    return Status::Internal("adaptive run returned a wrong quotient");
  }
  bench::BenchRow* row = report->AddCostRow("accurate adaptive", cost);
  row->AddValue("replans", static_cast<double>(adaptive_report.events.size()));
  row->AddValue("best_static_ms", best_ms);
  report->AddParam("accurate_replan", adaptive_report.ToLine());
  std::printf("  %-44s %10.1f ms (cpu %.1f + io %.1f)\n", "adaptive",
              cost.total_ms(), cost.cpu_ms, cost.io_ms);
  std::printf("  replan: %s\n\n", adaptive_report.ToLine().c_str());

  if (!adaptive_report.events.empty()) {
    return Status::Internal("honest estimates triggered a spurious re-plan");
  }
  if (cost.total_ms() > best_ms * kAccurateNoiseMargin) {
    return Status::Internal(
        "adaptive run fell outside the noise band of the best static choice");
  }
  std::printf("  adaptive %.1f ms vs best static %.1f ms (gate: <= %.0f%%) "
              "[ok]\n\n",
              cost.total_ms(), best_ms, kAccurateNoiseMargin * 100);
  return Status::OK();
}

}  // namespace
}  // namespace reldiv

int main() {
  using namespace reldiv;
  std::printf(
      "=== Experiment E8: adaptive re-planning under estimation error ===\n\n");
  bench::BenchReporter report("adaptive_replan");
  report.AddParam("smoke", bench::SmokeMode() ? 1 : 0);
  Status status = RunMisestimated(&report);
  if (status.ok()) status = RunAccurate(&report);
  if (!status.ok()) {
    std::fprintf(stderr, "FAILED: %s\n", status.ToString().c_str());
    return 1;
  }
  return report.WriteFile() ? 0 : 1;
}
