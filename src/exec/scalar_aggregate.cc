#include "exec/scalar_aggregate.h"

#include "exec/scan.h"

namespace reldiv {

ScalarAggregateOperator::ScalarAggregateOperator(
    ExecContext* ctx, std::unique_ptr<Operator> child,
    std::vector<AggSpec> aggs)
    : ctx_(ctx), child_(std::move(child)), aggs_(std::move(aggs)) {
  auto fields = AggOutputFields(child_->output_schema(), aggs_);
  if (fields.ok()) {
    schema_ = Schema(fields.MoveValue());
  } else {
    init_status_ = fields.status();
  }
}

Status ScalarAggregateOperator::Open() {
  RELDIV_RETURN_NOT_OK(init_status_);
  AggState state(aggs_);
  RELDIV_RETURN_NOT_OK(child_->Open());
  while (true) {
    Tuple tuple;
    bool has = false;
    RELDIV_RETURN_NOT_OK(child_->Next(&tuple, &has));
    if (!has) break;
    state.Update(aggs_, tuple);
  }
  RELDIV_RETURN_NOT_OK(child_->Close());
  result_ = Tuple();
  RELDIV_RETURN_NOT_OK(state.Finish(aggs_, &result_));
  emitted_ = false;
  return Status::OK();
}

Status ScalarAggregateOperator::Next(Tuple* tuple, bool* has_next) {
  if (emitted_) {
    *has_next = false;
    return Status::OK();
  }
  *tuple = result_;
  emitted_ = true;
  *has_next = true;
  return Status::OK();
}

Status ScalarAggregateOperator::Close() { return Status::OK(); }

Result<uint64_t> CountRelation(ExecContext* ctx, const Relation& relation) {
  ScanOperator scan(ctx, relation);
  uint64_t count = 0;
  RELDIV_RETURN_NOT_OK(scan.Open());
  while (true) {
    Tuple tuple;
    bool has = false;
    RELDIV_RETURN_NOT_OK(scan.Next(&tuple, &has));
    if (!has) break;
    count++;
  }
  RELDIV_RETURN_NOT_OK(scan.Close());
  return count;
}

}  // namespace reldiv
