// Codd's classic universal-quantification query: "find the suppliers who
// supply ALL parts of a given kind" over Supplies(supplier_id, part_id) and
// Parts(part_id). This example shows three library capabilities beyond the
// quickstart:
//   1. the inputs contain duplicates (multiple shipments of the same part):
//      hash-division runs on the raw data, the aggregation strategies use
//      DivisionOptions::eliminate_duplicates;
//   2. every algorithm variant produces the same supplier set;
//   3. when memory is capped, the partitioned form of hash-division (§3.4)
//      computes the same result where the plain operator reports overflow;
//   4. the observability layer: EXPLAIN ANALYZE prints the §4 cost-model
//      predictions beside measured per-operator metrics (with the
//      cost-drift line comparing this run against the model), and a
//      TraceRecorder writes a chrome://tracing timeline to
//      supplier_parts_trace.json;
//   5. the process-telemetry layer (DESIGN.md §14): the metric registry
//      dumped in Prometheus exposition format, and the flight recorder
//      replaying the structured events around an injected disk fault.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "reldiv/reldiv.h"
#include "testing/failpoint.h"

using namespace reldiv;

namespace {

constexpr uint64_t kParts = 30;
constexpr uint64_t kSuppliers = 3000;
constexpr uint64_t kFullRangeSuppliers = 120;  // supply every part

Status LoadCatalog(Database* db, Relation* supplies, Relation* parts) {
  RELDIV_ASSIGN_OR_RETURN(
      *supplies,
      db->CreateTable("supplies",
                      Schema{Field{"supplier_id", ValueType::kInt64},
                             Field{"part_id", ValueType::kInt64}}));
  RELDIV_ASSIGN_OR_RETURN(
      *parts, db->CreateTable("parts",
                              Schema{Field{"part_id", ValueType::kInt64}}));
  Rng rng(2026);
  for (uint64_t p = 0; p < kParts; ++p) {
    RELDIV_RETURN_NOT_OK(db->Insert(
        "parts", Tuple{Value::Int64(static_cast<int64_t>(p))}));
  }
  for (uint64_t s = 0; s < kSuppliers; ++s) {
    const bool full_range = s < kFullRangeSuppliers;
    const uint64_t distinct_parts =
        full_range ? kParts : rng.Uniform(kParts - 1) + 1;
    for (uint64_t i = 0; i < distinct_parts; ++i) {
      const uint64_t part = full_range ? i : rng.Uniform(kParts - 1);
      // Several shipments of the same part → duplicate (supplier, part)
      // rows, the realistic case the paper's duplicate discussion targets.
      const uint64_t shipments = rng.Uniform(3) + 1;
      for (uint64_t k = 0; k < shipments; ++k) {
        RELDIV_RETURN_NOT_OK(db->Insert(
            "supplies", Tuple{Value::Int64(static_cast<int64_t>(s)),
                              Value::Int64(static_cast<int64_t>(part))}));
      }
    }
  }
  return Status::OK();
}

// Prints the registry's Prometheus exposition filtered to a few headline
// series, with histogram bucket lines elided (a full dump is one
// ToPrometheusText() call; this keeps the example output readable).
void PrintPrometheusExcerpt() {
  static const char* kSeries[] = {"reldiv_disk_", "reldiv_buffer_",
                                  "reldiv_query_", "reldiv_fallbacks_total"};
  const std::string text = MetricRegistry::Global().ToPrometheusText();
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find("_bucket{") != std::string::npos) continue;
    for (const char* series : kSeries) {
      if (line.find(series) != std::string::npos) {
        std::printf("  %s\n", line.c_str());
        break;
      }
    }
  }
}

Status Run() {
  // Full sampling so the per-algorithm wall-time histograms fill in; the
  // default (counting) mode would populate only counters and gauges.
  Telemetry::SetMode(TelemetryMode::kSampling);
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db, Database::Open());
  Relation supplies, parts;
  RELDIV_RETURN_NOT_OK(LoadCatalog(db.get(), &supplies, &parts));
  std::printf("Catalog: %llu shipment rows (with duplicates), %llu parts, "
              "%llu suppliers.\n\n",
              static_cast<unsigned long long>(supplies.store->num_records()),
              static_cast<unsigned long long>(parts.store->num_records()),
              static_cast<unsigned long long>(kSuppliers));

  DivisionQuery query{supplies, parts, {"part_id"}};

  // 1 & 2: all algorithm variants agree; aggregation variants need explicit
  // duplicate elimination first (§2.2 aside / footnote 1).
  std::vector<Tuple> reference;
  std::printf("%-26s %-32s %9s\n", "algorithm", "duplicate handling",
              "suppliers");
  for (DivisionAlgorithm algorithm :
       {DivisionAlgorithm::kHashDivision, DivisionAlgorithm::kNaive,
        DivisionAlgorithm::kSortAggregate,
        DivisionAlgorithm::kSortAggregateWithJoin,
        DivisionAlgorithm::kHashAggregate,
        DivisionAlgorithm::kHashAggregateWithJoin}) {
    DivisionOptions options;
    const bool aggregation =
        algorithm != DivisionAlgorithm::kHashDivision &&
        algorithm != DivisionAlgorithm::kNaive;
    options.eliminate_duplicates = aggregation;
    RELDIV_ASSIGN_OR_RETURN(std::vector<Tuple> quotient,
                            Divide(db->ctx(), query, algorithm, options));
    std::sort(quotient.begin(), quotient.end());
    std::printf("%-26s %-32s %9zu\n", DivisionAlgorithmName(algorithm),
                algorithm == DivisionAlgorithm::kHashDivision
                    ? "native (bit maps, §3.3)"
                    : (algorithm == DivisionAlgorithm::kNaive
                           ? "during the initial sorts"
                           : "explicit pre-pass"),
                quotient.size());
    if (reference.empty()) {
      reference = std::move(quotient);
    } else if (quotient != reference) {
      return Status::Internal("algorithms disagree");
    }
  }
  std::printf("→ %zu suppliers stock the complete range (expected %llu).\n\n",
              reference.size(),
              static_cast<unsigned long long>(kFullRangeSuppliers));

  // 3: cap the memory pool; the 3000-candidate quotient table no longer
  // fits, so plain hash-division overflows and the §3.4 quotient-partitioned
  // form takes over.
  DatabaseOptions tight;
  tight.pool_bytes = 96 * 1024;
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> small_db,
                          Database::Open(tight));
  Relation supplies2, parts2;
  RELDIV_RETURN_NOT_OK(LoadCatalog(small_db.get(), &supplies2, &parts2));
  DivisionQuery query2{supplies2, parts2, {"part_id"}};
  auto plain = Divide(small_db->ctx(), query2,
                      DivisionAlgorithm::kHashDivision);
  std::printf("Under a %zu KB memory cap:\n", tight.pool_bytes / 1024);
  std::printf("  plain hash-division:        %s\n",
              plain.ok() ? "fits" : plain.status().ToString().c_str());
  DivisionOptions partitioned;
  partitioned.partition_strategy = PartitionStrategy::kQuotient;
  partitioned.num_partitions = 8;
  RELDIV_ASSIGN_OR_RETURN(
      std::vector<Tuple> quotient,
      Divide(small_db->ctx(), query2,
             DivisionAlgorithm::kHashDivisionPartitioned, partitioned));
  std::sort(quotient.begin(), quotient.end());
  std::printf("  quotient-partitioned (8x):  %zu suppliers, %s\n",
              quotient.size(),
              quotient == reference ? "identical result" : "MISMATCH");
  if (quotient != reference) {
    return Status::Internal("partitioned mismatch");
  }

  // 4: EXPLAIN ANALYZE over the same query, with a trace recorder attached:
  // each algorithm's run adds operator-lifecycle spans and disk-transfer
  // events to a chrome://tracing timeline.
  std::printf("\n");
  TraceRecorder trace;
  db->ctx()->set_trace(&trace);
  db->disk()->set_trace(&trace);
  ExplainAnalyzeOptions explain_options;
  explain_options.algorithms = {DivisionAlgorithm::kNaive,
                                DivisionAlgorithm::kSortAggregate,
                                DivisionAlgorithm::kHashAggregate,
                                DivisionAlgorithm::kHashDivision};
  explain_options.division.eliminate_duplicates = true;
  RELDIV_ASSIGN_OR_RETURN(
      ExplainAnalyzeResult explained,
      ExplainAnalyzeDivision(db->ctx(), query, explain_options));
  std::printf("%s", explained.text.c_str());
  db->disk()->set_trace(nullptr);
  db->ctx()->set_trace(nullptr);
  const char* trace_path = "supplier_parts_trace.json";
  RELDIV_RETURN_NOT_OK(trace.WriteFile(trace_path));
  std::printf("\nwrote %zu trace events to %s "
              "(load in chrome://tracing or https://ui.perfetto.dev)\n",
              trace.num_events(), trace_path);

  // 5a: every run above also updated the process-wide metric registry;
  // this is what a scrape endpoint would serve.
  std::printf("\nProcess metrics (Prometheus exposition, excerpt):\n");
  PrintPrometheusExcerpt();

  // 5b: inject a disk fault and replay the flight recorder — the same ring
  // the RELDIV_CHECK failure handler dumps on a crash, here read back after
  // a query that failed cleanly.
  FlightRecorder& recorder = FlightRecorder::Global();
  recorder.Clear();
  RELDIV_RETURN_NOT_OK(db->buffer_manager()->FlushAll());
  RELDIV_RETURN_NOT_OK(db->buffer_manager()->DropAll());
  Status injected;
  {
    ScopedFailpoint fault(
        "sim_disk/read",
        FailpointPolicy::Always(StatusCode::kIOError, "injected head crash"));
    Result<std::vector<Tuple>> crashed =
        Divide(db->ctx(), query, DivisionAlgorithm::kHashDivision);
    if (crashed.ok()) {
      return Status::Internal("injected fault did not surface");
    }
    injected = crashed.status();
  }
  std::printf("\nInjected fault: query failed with: %s\n",
              injected.ToString().c_str());
  std::printf("Flight recorder (%zu events retained, oldest first):\n",
              recorder.size());
  for (const FlightEvent& event : recorder.Events()) {
    std::printf("  #%llu +%lluus [%s] %s %s value=%llu\n",
                static_cast<unsigned long long>(event.seq),
                static_cast<unsigned long long>(event.ts_us),
                FlightEventCategoryName(event.category), event.label.c_str(),
                event.detail.c_str(),
                static_cast<unsigned long long>(event.value));
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "supplier_parts failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
