#ifndef RELDIV_COMMON_MUTEX_H_
#define RELDIV_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace reldiv {

/// std::mutex wrapped as a Clang thread-safety "capability" so that
/// GUARDED_BY / REQUIRES annotations are actually enforced (DESIGN.md §13).
/// libstdc++'s std::mutex carries no capability attribute, which would make
/// every annotation referencing it vacuous; this wrapper is a zero-cost
/// shim that restores the contract. Satisfies Lockable, so it composes with
/// std::unique_lock and std::condition_variable_any where needed.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// std::recursive_mutex as a capability. Used only by BufferManager, whose
/// Fix path re-enters through the MemoryPool reclaimer on the same thread
/// (storage/buffer_manager.h); everything else uses the plain Mutex.
class CAPABILITY("mutex") RecursiveMutex {
 public:
  RecursiveMutex() = default;

  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::recursive_mutex mu_;
};

/// std::lock_guard equivalent over Mutex: acquires for the whole scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::lock_guard equivalent over RecursiveMutex.
class SCOPED_CAPABILITY RecursiveMutexLock {
 public:
  explicit RecursiveMutexLock(RecursiveMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~RecursiveMutexLock() RELEASE() { mu_.unlock(); }

  RecursiveMutexLock(const RecursiveMutexLock&) = delete;
  RecursiveMutexLock& operator=(const RecursiveMutexLock&) = delete;

 private:
  RecursiveMutex& mu_;
};

/// std::unique_lock equivalent over Mutex: a scoped acquisition that can be
/// dropped and re-taken mid-scope (the scheduler's worker loop) and that
/// satisfies BasicLockable, so CondVar::wait(lock) below can park on it.
/// The destructor releases only if currently held.
class SCOPED_CAPABILITY UniqueMutexLock {
 public:
  explicit UniqueMutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~UniqueMutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  UniqueMutexLock(const UniqueMutexLock&) = delete;
  UniqueMutexLock& operator=(const UniqueMutexLock&) = delete;

  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable compatible with reldiv::Mutex via UniqueMutexLock.
/// wait() releases and re-acquires the lock internally; from the caller's
/// (and the analysis') point of view the capability is held throughout, which
/// matches the wait postcondition.
using CondVar = std::condition_variable_any;

}  // namespace reldiv

#endif  // RELDIV_COMMON_MUTEX_H_
