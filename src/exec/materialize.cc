#include "exec/materialize.h"

#include "exec/scan.h"
#include "storage/record_file.h"

namespace reldiv {

Result<uint64_t> Materialize(Operator* input, RecordStore* store,
                             size_t batch_capacity) {
  RowCodec codec(input->output_schema());
  uint64_t written = 0;
  RELDIV_RETURN_NOT_OK(input->Open());
  TupleBatch batch(batch_capacity);
  std::string buffer;
  bool has_more = true;
  while (has_more) {
    RELDIV_RETURN_NOT_OK(input->NextBatch(&batch, &has_more));
    for (const Tuple& tuple : batch) {
      buffer.clear();
      RELDIV_RETURN_NOT_OK(codec.Encode(tuple, &buffer));
      RELDIV_ASSIGN_OR_RETURN(Rid rid, store->Append(Slice(buffer)));
      (void)rid;
      written++;
    }
  }
  RELDIV_RETURN_NOT_OK(input->Close());
  return written;
}

Result<std::vector<Tuple>> ReadAll(ExecContext* ctx,
                                   const Relation& relation) {
  ScanOperator scan(ctx, relation);
  return CollectAll(&scan, ctx->batch_capacity());
}

Status AppendAll(const Relation& relation, const std::vector<Tuple>& tuples) {
  RowCodec codec(relation.schema);
  std::string buffer;
  for (const Tuple& tuple : tuples) {
    buffer.clear();
    RELDIV_RETURN_NOT_OK(codec.Encode(tuple, &buffer));
    RELDIV_ASSIGN_OR_RETURN(Rid rid, relation.store->Append(Slice(buffer)));
    (void)rid;
  }
  return Status::OK();
}

SpoolOperator::SpoolOperator(ExecContext* ctx,
                             std::unique_ptr<Operator> child)
    : ctx_(ctx), child_(std::move(child)) {}

SpoolOperator::~SpoolOperator() = default;

Status SpoolOperator::Open() {
  spool_ = std::make_unique<RecordFile>(ctx_->disk(), ctx_->buffer_manager(),
                                        "spool");
  RELDIV_ASSIGN_OR_RETURN(uint64_t written,
                          Materialize(child_.get(), spool_.get(),
                                      ctx_->batch_capacity()));
  (void)written;
  Relation spooled{child_->output_schema(), spool_.get()};
  reader_ = std::make_unique<ScanOperator>(ctx_, spooled);
  return reader_->Open();
}

Status SpoolOperator::Next(Tuple* tuple, bool* has_next) {
  return reader_->Next(tuple, has_next);
}

Status SpoolOperator::NextBatch(TupleBatch* batch, bool* has_more) {
  return reader_->NextBatch(batch, has_more);
}

Status SpoolOperator::Close() {
  Status status = reader_ == nullptr ? Status::OK() : reader_->Close();
  reader_.reset();
  spool_.reset();
  return status;
}

}  // namespace reldiv
