#include "exec/fused/fused_division.h"

namespace reldiv {
namespace fused {

std::unique_ptr<Operator> MakeFusedHashDivision(
    ExecContext* ctx, const ResolvedDivision& resolved,
    std::unique_ptr<Operator> divisor, const DivisionOptions& options,
    const FusedFilter& filter) {
  return std::make_unique<FusedHashDivision<RelationSource>>(
      ctx, RelationSource(resolved.dividend), std::move(divisor),
      resolved.match_attrs, resolved.quotient_attrs, options, filter);
}

std::unique_ptr<Operator> MakeFusedHashDivisionOverVector(
    ExecContext* ctx, const Schema* dividend_schema,
    const std::vector<Tuple>* dividend, std::unique_ptr<Operator> divisor,
    std::vector<size_t> match_attrs, std::vector<size_t> quotient_attrs,
    const DivisionOptions& options, const FusedFilter& filter) {
  return std::make_unique<FusedHashDivision<VectorSource>>(
      ctx, VectorSource(dividend_schema, dividend), std::move(divisor),
      std::move(match_attrs), std::move(quotient_attrs), options, filter);
}

std::unique_ptr<Operator> MakeFusedScanFilterProject(
    ExecContext* ctx, Relation relation, const FusedFilter& filter,
    std::vector<size_t> projection) {
  return std::make_unique<FusedScanFilterProject<RelationSource>>(
      ctx, RelationSource(relation), filter, std::move(projection));
}

std::unique_ptr<Operator> MakeFusedScanFilterProjectOverVector(
    ExecContext* ctx, const Schema* schema, const std::vector<Tuple>* tuples,
    const FusedFilter& filter, std::vector<size_t> projection) {
  return std::make_unique<FusedScanFilterProject<VectorSource>>(
      ctx, VectorSource(schema, tuples), filter, std::move(projection));
}

}  // namespace fused
}  // namespace reldiv
