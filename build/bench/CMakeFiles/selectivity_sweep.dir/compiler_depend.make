# Empty compiler generated dependencies file for selectivity_sweep.
# This may be replaced when dependencies are built.
