#ifndef RELDIV_PLANNER_ADAPTIVE_H_
#define RELDIV_PLANNER_ADAPTIVE_H_

#include <list>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "division/division.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "planner/physical_planner.h"

namespace reldiv {

class HashDivisionCore;

/// Why the adaptive operator abandoned or adjusted its running plan.
enum class ReplanTrigger {
  kNone = 0,
  /// Checkpoint 0 (pre-execution): the cached dividend cardinality the
  /// chooser planned from diverges from the store's exact count.
  kDividendCardinality,
  /// Post-build checkpoint: the distinct divisor count observed while
  /// building the divisor table diverges from the planned cardinality.
  kDivisorCardinality,
  /// Mid-consume checkpoint: the quotient-candidate count observed so far —
  /// a hard lower bound on the final quotient width — already exceeds the
  /// planned estimate by the divergence threshold. (The corrected stats use
  /// a forward extrapolation; the trigger itself never does, so an honest
  /// estimate cannot fire it on the concave distinct-discovery curve.)
  kQuotientGrowth,
  /// The in-memory build was denied memory (pool grant or the
  /// hash_memory_bytes budget returned ResourceExhausted).
  kMemoryPressure,
};

/// Stable label for metrics/flight-recorder events
/// ("dividend-cardinality", "memory-pressure", ...).
const char* ReplanTriggerName(ReplanTrigger trigger);

/// One re-planning decision. `to == from` records a checkpoint that fired
/// its divergence test but re-chose the same algorithm (decision: stay).
struct ReplanEvent {
  ReplanTrigger trigger = ReplanTrigger::kNone;
  DivisionAlgorithm from = DivisionAlgorithm::kHashDivision;
  DivisionAlgorithm to = DivisionAlgorithm::kHashDivision;
  double expected = 0;  ///< the planned value the checkpoint tested
  double observed = 0;  ///< the measured/extrapolated value
  uint64_t dividend_tuples_seen = 0;
};

/// Process-wide cache of observed division cardinalities, keyed by the
/// stored inputs and match attributes of a query. Per-query feedback
/// (AdaptiveDivisionOperator writes observations back on success) makes
/// repeated queries converge: the second run plans from measured values,
/// not the R = Q × S heuristic. EWMA merge so a one-off skewed run cannot
/// dominate. Thread-safe; all entry points are per-query cold paths.
///
/// Residency is bounded: entries beyond max_entries() are evicted least-
/// recently-used (Lookup and RecordObservation both refresh recency), with
/// evictions counted in reldiv_stats_cache_evictions. Unbounded growth was
/// a leak once a service loop sees millions of distinct (store, attrs)
/// keys — each dropped temp store left a dead entry behind forever.
class DivisionStatsCache {
 public:
  /// Default residency bound. Generous for any single workload (the whole
  /// differential corpus uses dozens of keys) while capping the structure
  /// at a few hundred KB however many distinct queries a server loop sees.
  static constexpr size_t kDefaultMaxEntries = 1024;

  struct Entry {
    double dividend_tuples = 0;
    double divisor_distinct = 0;
    double quotient_candidates = 0;
    uint64_t runs = 0;
  };

  static DivisionStatsCache& Global();

  std::optional<Entry> Lookup(const ResolvedDivision& resolved);

  /// EWMA-merges one run's observed values (alpha 0.5; the first
  /// observation is stored verbatim).
  void RecordObservation(const ResolvedDivision& resolved,
                         double dividend_tuples, double divisor_distinct,
                         double quotient_candidates);

  /// Plants an entry verbatim — the lying-stats fixtures force each re-plan
  /// trigger by injecting estimates the execution then contradicts.
  void InjectForTest(const ResolvedDivision& resolved, Entry entry);

  void Clear();
  size_t size() const;

  /// Caps resident entries, evicting LRU immediately if over the new bound.
  /// 0 is pinned to 1 (an unbounded cache is exactly the leak this exists
  /// to fix). Tests shrink it; the global default is kDefaultMaxEntries.
  void set_max_entries(size_t max_entries);
  size_t max_entries() const;

  /// Lifetime LRU evictions (mirrors reldiv_stats_cache_evictions).
  uint64_t evictions() const;

 private:
  DivisionStatsCache() = default;

  /// Stores have no names; identity is the store pointers plus the match
  /// columns (two queries over the same tables with different match attrs
  /// have different quotients).
  struct Key {
    const void* dividend;
    const void* divisor;
    std::vector<size_t> match_attrs;
    bool operator<(const Key& other) const {
      if (dividend != other.dividend) return dividend < other.dividend;
      if (divisor != other.divisor) return divisor < other.divisor;
      return match_attrs < other.match_attrs;
    }
  };
  static Key KeyFor(const ResolvedDivision& resolved);

  struct Node {
    Entry entry;
    std::list<Key>::iterator lru_pos;
  };

  /// Moves `it` to the MRU end and returns its node.
  Node& Touch(std::map<Key, Node>::iterator it) REQUIRES(mu_);
  /// Evicts LRU entries until the bound holds, counting each eviction.
  void EnforceBound() REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<Key, Node> entries_ GUARDED_BY(mu_);
  /// Recency order, most recent first; holds exactly the keys of entries_.
  std::list<Key> lru_ GUARDED_BY(mu_);
  size_t max_entries_ GUARDED_BY(mu_) = kDefaultMaxEntries;
  uint64_t evictions_ GUARDED_BY(mu_) = 0;
};

/// Tuning for adaptive execution.
struct AdaptiveOptions {
  /// Execution options forwarded to the chosen plan. The adaptive operator
  /// forces overflow_fallback/fused_pipelines/parallel_fragments/
  /// early_output off on the instrumented hash-division path (it owns that
  /// machinery itself).
  DivisionOptions division;
  /// Table 1 unit times for the chooser.
  CostUnits units;
  /// Observed/planned ratio (either direction) at which a checkpoint
  /// declares the estimate wrong and re-plans. Must be > 1.
  double divergence_threshold = 4.0;
  /// Dividend tuples between mid-consume quotient-growth checkpoints.
  uint64_t checkpoint_interval = 256;
  /// Consult DivisionStatsCache::Global() before choosing and write the
  /// observed cardinalities back on success.
  bool use_stats_cache = true;
  /// Scale each algorithm's predicted cost by its historical signed drift
  /// (CostDriftTracker aggregates) before picking the minimum.
  bool calibrate_from_drift = false;
  /// Non-zero replaces DivisionStats::memory_pages: tests pin the planner's
  /// memory picture independently of the pool/hash budgets that enforce it.
  double memory_pages_override = 0;
  /// Optimizer-hint pin of the initial algorithm (skips the chooser's
  /// argmin but keeps its predictions); checkpoints may still re-plan away.
  std::optional<DivisionAlgorithm> forced_initial;
};

/// Everything EXPLAIN ANALYZE and the differential tests need to know about
/// one adaptive execution.
struct AdaptiveReport {
  AlgorithmChoice initial;
  DivisionAlgorithm final_algorithm = DivisionAlgorithm::kHashDivision;
  std::vector<ReplanEvent> events;
  /// The stats the initial choice was made from (after any cache merge).
  DivisionStats planning_stats;
  uint64_t checkpoints_run = 0;
  bool stats_cache_hit = false;

  /// The EXPLAIN ANALYZE "replan:" line (without the "replan:" prefix or a
  /// trailing newline): initial choice, trigger chain, final algorithm —
  /// e.g. "hash-division -> hash-division-partitioned (divisor-cardinality
  /// at 0 tuples; expected 2, observed 600)" or "none (hash-division)".
  std::string ToLine() const;
};

/// Division under cardinality-checkpoint instrumentation: chooses with
/// ChooseDivisionAlgorithm (seeded from the stats cache and, optionally,
/// CostDriftTracker calibration), then executes the choice while comparing
/// observed cardinalities — dividend count, distinct divisor count,
/// quotient-candidate growth, hash-table memory — against the planned
/// DivisionStats. Divergence beyond AdaptiveOptions::divergence_threshold
/// abandons or degrades mid-query:
///
///   - dividend-cardinality (checkpoint 0): sort-aggregation degrades to
///     its hash-aggregation sibling before any merge pass; other choices
///     are re-chosen outright;
///   - divisor-cardinality / quotient-growth: hash-division re-chooses from
///     corrected stats and abandons to the partitioned form when the
///     corrected tables no longer fit;
///   - memory-pressure: ResourceExhausted degrades through the existing
///     FallbackDivisionOperator restart path.
///
/// Every decision lands in the flight recorder and the reldiv_replan_*
/// metric family; successful runs feed observations back into the stats
/// cache. A run whose checkpoints never fire performs exactly the counted
/// operations of the equivalent static plan (the differential corpus
/// asserts Table 1 parity).
class AdaptiveDivisionOperator : public Operator {
 public:
  AdaptiveDivisionOperator(ExecContext* ctx, DivisionQuery query,
                           ResolvedDivision resolved,
                           const AdaptiveOptions& options);
  ~AdaptiveDivisionOperator() override;  // HashDivisionCore is incomplete here

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status Close() override;

  /// `replans` (events recorded) and `replan_checkpoints` for the run.
  void ExportGauges(GaugeList* gauges) const override;

  /// Valid after Open(); reset by the next Open().
  const AdaptiveReport& report() const { return report_; }

 private:
  /// Choice under optional drift calibration, preserving the chooser's
  /// deterministic lowest-enum tie-break.
  AlgorithmChoice Choose(const DivisionStats& stats) const;

  /// |observed / planned| beyond the threshold in either direction.
  bool Diverges(double planned, double observed) const;

  /// Records one decision in the report, the metric family, and the flight
  /// recorder (the latter two only under Telemetry::counting()).
  void RecordDecision(ReplanEvent event);
  void CountCheckpoint();

  /// Runs `algorithm` as a static plan into results_ (the abandon path and
  /// every non-hash-division initial choice).
  Status RunStatic(DivisionAlgorithm algorithm, const DivisionStats& stats);

  /// The instrumented hash-division drive: mirrors the serial
  /// HashDivisionOperator::Open counted operations exactly, adding only
  /// metadata checkpoints.
  Status RunHashDivision(DivisionStats stats);

  /// ResourceExhausted recovery through FallbackDivisionOperator.
  Status DegradeOnMemoryPressure(uint64_t tuples_seen);

  /// §3.4 partition-count sizing for a degraded plan (the PlanDivision
  /// formula applied to corrected stats).
  DivisionOptions PartitionedOptionsFor(const DivisionStats& stats) const;

  void RecordFeedback();

  ExecContext* ctx_;
  DivisionQuery query_;
  ResolvedDivision resolved_;
  AdaptiveOptions options_;
  Schema schema_;

  AdaptiveReport report_;
  std::unique_ptr<HashDivisionCore> core_;
  double observed_divisor_distinct_ = 0;
  double observed_quotient_candidates_ = 0;
  std::vector<Tuple> results_;
  TupleBatch input_batch_{1};
  size_t emit_pos_ = 0;
};

/// Front end: resolve, then build the adaptive operator. Returned as the
/// concrete type so callers (EXPLAIN ANALYZE, tests) can read the report
/// after running it.
Result<std::unique_ptr<AdaptiveDivisionOperator>> PlanAdaptiveDivision(
    ExecContext* ctx, const DivisionQuery& query,
    const AdaptiveOptions& options = {});

}  // namespace reldiv

#endif  // RELDIV_PLANNER_ADAPTIVE_H_
