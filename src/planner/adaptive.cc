#include "planner/adaptive.h"

#include <algorithm>

#include "common/config.h"
#include "common/metric_names.h"
#include "division/fallback_division.h"
#include "division/hash_division.h"
#include "exec/scan.h"
#include "obs/cost_drift.h"
#include "obs/flight_recorder.h"
#include "obs/telemetry.h"

namespace reldiv {

const char* ReplanTriggerName(ReplanTrigger trigger) {
  switch (trigger) {
    case ReplanTrigger::kNone:
      return "none";
    case ReplanTrigger::kDividendCardinality:
      return "dividend-cardinality";
    case ReplanTrigger::kDivisorCardinality:
      return "divisor-cardinality";
    case ReplanTrigger::kQuotientGrowth:
      return "quotient-growth";
    case ReplanTrigger::kMemoryPressure:
      return "memory-pressure";
  }
  return "unknown";
}

DivisionStatsCache& DivisionStatsCache::Global() {
  // Leaked like the other process singletons so late observers stay valid.
  static DivisionStatsCache* cache = new DivisionStatsCache();  // NOLINT(reldiv/naked-new): intentional static leak, see comment above
  return *cache;
}

DivisionStatsCache::Key DivisionStatsCache::KeyFor(
    const ResolvedDivision& resolved) {
  return Key{resolved.dividend.store, resolved.divisor.store,
             resolved.match_attrs};
}

DivisionStatsCache::Node& DivisionStatsCache::Touch(
    std::map<Key, Node>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second;
}

void DivisionStatsCache::EnforceBound() {
  while (entries_.size() > max_entries_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_++;
    if (Telemetry::counting()) {
      static TelemetryCounter* evictions_total =
          MetricRegistry::Global().FindOrCreateCounter(
              metric_names::kStatsCacheEvictions);
      evictions_total->Add(1);
    }
  }
}

std::optional<DivisionStatsCache::Entry> DivisionStatsCache::Lookup(
    const ResolvedDivision& resolved) {
  MutexLock lock(mu_);
  auto it = entries_.find(KeyFor(resolved));
  if (it == entries_.end()) return std::nullopt;
  return Touch(it).entry;
}

void DivisionStatsCache::RecordObservation(const ResolvedDivision& resolved,
                                           double dividend_tuples,
                                           double divisor_distinct,
                                           double quotient_candidates) {
  MutexLock lock(mu_);
  const Key key = KeyFor(resolved);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    it = entries_.emplace(key, Node{Entry{}, lru_.insert(lru_.begin(), key)})
             .first;
  } else {
    Touch(it);
  }
  Entry& entry = it->second.entry;
  if (entry.runs == 0) {
    entry.dividend_tuples = dividend_tuples;
    entry.divisor_distinct = divisor_distinct;
    entry.quotient_candidates = quotient_candidates;
  } else {
    // EWMA with alpha 0.5: converges geometrically toward repeated
    // observations, so a planted lie is halved per corrected run.
    entry.dividend_tuples += 0.5 * (dividend_tuples - entry.dividend_tuples);
    entry.divisor_distinct += 0.5 * (divisor_distinct - entry.divisor_distinct);
    entry.quotient_candidates +=
        0.5 * (quotient_candidates - entry.quotient_candidates);
  }
  entry.runs++;
  EnforceBound();
}

void DivisionStatsCache::InjectForTest(const ResolvedDivision& resolved,
                                       Entry entry) {
  MutexLock lock(mu_);
  if (entry.runs == 0) entry.runs = 1;
  const Key key = KeyFor(resolved);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    it = entries_.emplace(key, Node{Entry{}, lru_.insert(lru_.begin(), key)})
             .first;
  } else {
    Touch(it);
  }
  it->second.entry = entry;
  EnforceBound();
}

void DivisionStatsCache::Clear() {
  MutexLock lock(mu_);
  entries_.clear();
  lru_.clear();
}

size_t DivisionStatsCache::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

void DivisionStatsCache::set_max_entries(size_t max_entries) {
  MutexLock lock(mu_);
  max_entries_ = max_entries == 0 ? 1 : max_entries;
  EnforceBound();
}

size_t DivisionStatsCache::max_entries() const {
  MutexLock lock(mu_);
  return max_entries_;
}

uint64_t DivisionStatsCache::evictions() const {
  MutexLock lock(mu_);
  return evictions_;
}

namespace {

std::string FormatCardinality(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

}  // namespace

std::string AdaptiveReport::ToLine() const {
  std::string line = DivisionAlgorithmName(initial.algorithm);
  if (events.empty()) {
    return std::string("none (") + line + ")";
  }
  for (const ReplanEvent& event : events) {
    line += std::string(" -> ") + DivisionAlgorithmName(event.to) + " (" +
            ReplanTriggerName(event.trigger) + " at " +
            std::to_string(event.dividend_tuples_seen) +
            " tuples; expected " + FormatCardinality(event.expected) +
            ", observed " + FormatCardinality(event.observed) + ")";
  }
  if (events.back().to != final_algorithm) {
    line += std::string(" -> ") + DivisionAlgorithmName(final_algorithm);
  }
  return line;
}

AdaptiveDivisionOperator::AdaptiveDivisionOperator(
    ExecContext* ctx, DivisionQuery query, ResolvedDivision resolved,
    const AdaptiveOptions& options)
    : ctx_(ctx),
      query_(std::move(query)),
      resolved_(std::move(resolved)),
      options_(options),
      schema_(resolved_.quotient_schema) {}

AdaptiveDivisionOperator::~AdaptiveDivisionOperator() = default;

AlgorithmChoice AdaptiveDivisionOperator::Choose(
    const DivisionStats& stats) const {
  AlgorithmChoice choice = ChooseDivisionAlgorithm(stats, options_.units);
  if (!options_.calibrate_from_drift) return choice;
  for (auto& [algorithm, ms] : choice.predicted_ms) {
    const CostDriftAggregate aggregate =
        CostDriftTracker::Global().AggregateFor(
            DivisionAlgorithmName(algorithm));
    if (aggregate.runs == 0) continue;
    // measured ≈ predicted * (1 + mean signed error); clamp so a wild
    // history can at most reorder, never zero out or explode a candidate.
    ms *= 1.0 + std::clamp(aggregate.mean_error(), -0.9, 9.0);
  }
  // Re-run the argmin with the chooser's deterministic tie-break: std::map
  // iterates in enum order and strict < keeps the first (lowest) algorithm.
  double best = 1e300;
  for (const auto& [algorithm, ms] : choice.predicted_ms) {
    if (ms < best) {
      best = ms;
      choice.algorithm = algorithm;
    }
  }
  return choice;
}

bool AdaptiveDivisionOperator::Diverges(double planned,
                                        double observed) const {
  const double lo = std::min(planned, observed);
  const double hi = std::max(planned, observed);
  if (hi <= 0) return false;
  if (lo <= 0) return true;
  return hi / lo >= options_.divergence_threshold;
}

void AdaptiveDivisionOperator::RecordDecision(ReplanEvent event) {
  report_.events.push_back(event);
  if (!Telemetry::counting()) return;
  MetricRegistry::Global()
      .FindOrCreateCounter(metric_names::kReplansTotal, "trigger",
                           ReplanTriggerName(event.trigger))
      ->Add(1);
  FlightRecorder::Global().Record(
      FlightEventCategory::kFallback, "replan",
      std::string(DivisionAlgorithmName(event.from)) + "->" +
          DivisionAlgorithmName(event.to) + " (" +
          ReplanTriggerName(event.trigger) + ")",
      event.dividend_tuples_seen);
}

void AdaptiveDivisionOperator::CountCheckpoint() {
  report_.checkpoints_run++;
  if (Telemetry::counting()) {
    MetricRegistry::Global()
        .FindOrCreateCounter(metric_names::kReplanCheckpointsTotal)
        ->Add(1);
  }
}

DivisionOptions AdaptiveDivisionOperator::PartitionedOptionsFor(
    const DivisionStats& stats) const {
  DivisionOptions options = options_.division;
  // The PlanDivision partition-count formula over the corrected stats.
  const double memory_bytes =
      stats.memory_pages * static_cast<double>(kPageSize);
  const double table_bytes =
      (stats.divisor_tuples + stats.quotient_estimate) * 96 +
      stats.quotient_estimate * (stats.divisor_tuples / 8);
  options.num_partitions = static_cast<size_t>(
      std::max(2.0, 2 * table_bytes / std::max(1.0, memory_bytes)) + 1);
  return options;
}

Status AdaptiveDivisionOperator::RunStatic(DivisionAlgorithm algorithm,
                                           const DivisionStats& stats) {
  DivisionOptions options =
      algorithm == DivisionAlgorithm::kHashDivisionPartitioned
          ? PartitionedOptionsFor(stats)
          : options_.division;
  std::unique_ptr<Operator> plan;
  RELDIV_ASSIGN_OR_RETURN(plan,
                          MakeDivisionPlan(ctx_, query_, algorithm, options));
  RELDIV_ASSIGN_OR_RETURN(results_,
                          CollectAll(plan.get(), ctx_->batch_capacity()));
  report_.final_algorithm = algorithm;
  return Status::OK();
}

Status AdaptiveDivisionOperator::DegradeOnMemoryPressure(
    uint64_t tuples_seen) {
  const double used = core_ == nullptr
                          ? 0
                          : static_cast<double>(core_->memory_bytes());
  core_.reset();
  RecordDecision(ReplanEvent{
      ReplanTrigger::kMemoryPressure, DivisionAlgorithm::kHashDivision,
      DivisionAlgorithm::kHashDivisionPartitioned,
      static_cast<double>(ctx_->hash_memory_bytes()), used, tuples_seen});
  // The §3.4 restart path: FallbackDivisionOperator re-attempts in memory
  // (the budget denies it again) and degrades to partitioned hash-division.
  DivisionOptions options = options_.division;
  options.fused_pipelines = false;
  options.parallel_fragments = 0;
  options.early_output = false;
  FallbackDivisionOperator fallback(ctx_, resolved_, options);
  RELDIV_ASSIGN_OR_RETURN(results_,
                          CollectAll(&fallback, ctx_->batch_capacity()));
  report_.final_algorithm = DivisionAlgorithm::kHashDivisionPartitioned;
  return Status::OK();
}

Status AdaptiveDivisionOperator::RunHashDivision(DivisionStats stats) {
  DivisionOptions tuned = options_.division;
  // The adaptive drive owns fallback/checkpoint machinery itself and mirrors
  // the serial stop-and-go plan so an untriggered run has Table 1 parity
  // with the static operator.
  tuned.overflow_fallback = false;
  tuned.fused_pipelines = false;
  tuned.parallel_fragments = 0;
  tuned.early_output = false;
  if (tuned.expected_divisor_cardinality == 0) {
    tuned.expected_divisor_cardinality =
        resolved_.divisor.store->num_records();
  }
  core_ = std::make_unique<HashDivisionCore>(
      ctx_, resolved_.match_attrs, resolved_.quotient_attrs, tuned);

  ScanOperator divisor_scan(ctx_, resolved_.divisor);
  Status build = core_->BuildDivisorTable(&divisor_scan);
  if (build.code() == StatusCode::kResourceExhausted) {
    return DegradeOnMemoryPressure(0);
  }
  RELDIV_RETURN_NOT_OK(build);

  // Post-build checkpoint: the distinct divisor count is now exact and the
  // plan was priced from an estimate of it.
  CountCheckpoint();
  observed_divisor_distinct_ = static_cast<double>(core_->divisor_count());
  if (Diverges(stats.divisor_tuples, observed_divisor_distinct_)) {
    DivisionStats corrected = stats;
    corrected.divisor_tuples = observed_divisor_distinct_;
    // The cache was caught lying about the divisor; fall back to the
    // R = Q × S heuristic over the corrected count.
    corrected.quotient_estimate =
        observed_divisor_distinct_ > 0
            ? corrected.dividend_tuples / observed_divisor_distinct_
            : corrected.dividend_tuples;
    const AlgorithmChoice rechoice = Choose(corrected);
    RecordDecision(ReplanEvent{ReplanTrigger::kDivisorCardinality,
                               DivisionAlgorithm::kHashDivision,
                               rechoice.algorithm, stats.divisor_tuples,
                               observed_divisor_distinct_, 0});
    stats = corrected;
    if (rechoice.algorithm != DivisionAlgorithm::kHashDivision) {
      // Abandon: only the divisor table was built; the dividend is unread.
      core_.reset();
      return RunStatic(rechoice.algorithm, stats);
    }
  }

  RELDIV_RETURN_NOT_OK(core_->ResetQuotientTable());
  ScanOperator dividend_scan(ctx_, resolved_.dividend);
  RELDIV_RETURN_NOT_OK(dividend_scan.Open());
  if (input_batch_.capacity() != ctx_->batch_capacity()) {
    input_batch_.ResetCapacity(ctx_->batch_capacity(), ctx_->pool());
  }

  const double total =
      static_cast<double>(resolved_.dividend.store->num_records());
  uint64_t seen = 0;
  uint64_t next_checkpoint = options_.checkpoint_interval;
  bool has_more = true;
  while (has_more) {
    Status step = dividend_scan.NextBatch(&input_batch_, &has_more);
    if (step.ok()) step = core_->ConsumeBatch(input_batch_, nullptr);
    if (step.code() == StatusCode::kResourceExhausted) {
      (void)dividend_scan.Close();
      return DegradeOnMemoryPressure(seen);
    }
    RELDIV_RETURN_NOT_OK(step);
    seen += input_batch_.size();

    if (options_.checkpoint_interval > 0 && seen >= next_checkpoint &&
        has_more) {
      while (next_checkpoint <= seen) {
        next_checkpoint += options_.checkpoint_interval;
      }
      CountCheckpoint();
      // The quotient-group width so far is a hard lower bound on the final
      // width, so testing it (one-sided) cannot fire on the concave
      // distinct-value discovery curve of an honestly estimated run — a
      // linear extrapolation would, since most candidates appear within the
      // first batches.
      const double candidates =
          static_cast<double>(core_->quotient_candidates());
      const double planned = std::max(1.0, stats.quotient_estimate);
      if (candidates >= planned * options_.divergence_threshold) {
        // The lower bound already proves the plan wrong; the forward
        // extrapolation is the better estimate to re-plan from.
        const double projected =
            seen == 0
                ? candidates
                : candidates * (std::max(total, static_cast<double>(seen)) /
                                static_cast<double>(seen));
        DivisionStats corrected = stats;
        corrected.quotient_estimate = std::max(candidates, projected);
        corrected.divisor_tuples =
            static_cast<double>(core_->divisor_count());
        const AlgorithmChoice rechoice = Choose(corrected);
        RecordDecision(ReplanEvent{ReplanTrigger::kQuotientGrowth,
                                   DivisionAlgorithm::kHashDivision,
                                   rechoice.algorithm, planned, projected,
                                   seen});
        // Whether staying or abandoning, plan from the corrected estimate
        // from here on — one divergence, one decision, no re-firing.
        stats = corrected;
        if (rechoice.algorithm != DivisionAlgorithm::kHashDivision) {
          (void)dividend_scan.Close();
          core_.reset();
          return RunStatic(rechoice.algorithm, stats);
        }
      }
    }
  }
  RELDIV_RETURN_NOT_OK(dividend_scan.Close());
  RELDIV_RETURN_NOT_OK(core_->EmitComplete(&results_));
  observed_quotient_candidates_ =
      static_cast<double>(core_->quotient_candidates());
  report_.final_algorithm = DivisionAlgorithm::kHashDivision;
  return Status::OK();
}

void AdaptiveDivisionOperator::RecordFeedback() {
  if (!options_.use_stats_cache) return;
  const double dividend =
      static_cast<double>(resolved_.dividend.store->num_records());
  const double divisor =
      observed_divisor_distinct_ > 0
          ? observed_divisor_distinct_
          : static_cast<double>(resolved_.divisor.store->num_records());
  const double quotient = observed_quotient_candidates_ > 0
                              ? observed_quotient_candidates_
                              : static_cast<double>(results_.size());
  DivisionStatsCache::Global().RecordObservation(resolved_, dividend, divisor,
                                                 quotient);
  if (Telemetry::counting()) {
    MetricRegistry::Global()
        .FindOrCreateGauge(metric_names::kReplanStatsCacheEntries)
        ->Set(DivisionStatsCache::Global().size());
  }
}

Status AdaptiveDivisionOperator::Open() {
  results_.clear();
  emit_pos_ = 0;
  core_.reset();
  report_ = AdaptiveReport{};
  observed_divisor_distinct_ = 0;
  observed_quotient_candidates_ = 0;

  DivisionStats exact = EstimateDivisionStats(resolved_, ctx_);
  if (options_.memory_pages_override > 0) {
    exact.memory_pages = options_.memory_pages_override;
  }
  exact.may_contain_duplicates = options_.division.eliminate_duplicates;
  // Mirror PlanDivision: without schema-level integrity knowledge the
  // divisor is treated as potentially restricted.
  exact.divisor_restricted = true;

  DivisionStats stats = exact;
  if (options_.use_stats_cache) {
    if (std::optional<DivisionStatsCache::Entry> entry =
            DivisionStatsCache::Global().Lookup(resolved_)) {
      report_.stats_cache_hit = true;
      if (Telemetry::counting()) {
        MetricRegistry::Global()
            .FindOrCreateCounter(metric_names::kReplanStatsCacheHitsTotal)
            ->Add(1);
      }
      stats.dividend_tuples = entry->dividend_tuples;
      stats.divisor_tuples = entry->divisor_distinct;
      stats.quotient_estimate = entry->quotient_candidates;
    }
  }

  AlgorithmChoice choice = Choose(stats);
  if (options_.forced_initial.has_value()) {
    choice.algorithm = *options_.forced_initial;
  }
  report_.initial = choice;
  report_.planning_stats = stats;
  report_.final_algorithm = choice.algorithm;
  DivisionAlgorithm current = choice.algorithm;

  // Checkpoint 0, before any execution: the stores' exact counts are free
  // metadata, so a cached dividend cardinality can be validated without
  // touching a page.
  CountCheckpoint();
  if (Diverges(stats.dividend_tuples, exact.dividend_tuples)) {
    DivisionStats corrected = stats;
    corrected.dividend_tuples = exact.dividend_tuples;
    corrected.dividend_pages = exact.dividend_pages;
    DivisionAlgorithm to;
    if (current == DivisionAlgorithm::kSortAggregate) {
      // Degrade within the aggregation family before the first merge pass:
      // hash aggregation keeps the same pipeline shape without the sort
      // whose run sizing the wrong cardinality just invalidated.
      to = DivisionAlgorithm::kHashAggregate;
    } else if (current == DivisionAlgorithm::kSortAggregateWithJoin) {
      to = DivisionAlgorithm::kHashAggregateWithJoin;
    } else {
      to = Choose(corrected).algorithm;
    }
    RecordDecision(ReplanEvent{ReplanTrigger::kDividendCardinality, current,
                               to, stats.dividend_tuples,
                               exact.dividend_tuples, 0});
    current = to;
    stats = corrected;
    report_.final_algorithm = current;
  }

  RELDIV_RETURN_NOT_OK(current == DivisionAlgorithm::kHashDivision
                           ? RunHashDivision(stats)
                           : RunStatic(current, stats));
  RecordFeedback();
  return Status::OK();
}

Status AdaptiveDivisionOperator::Next(Tuple* tuple, bool* has_next) {
  if (emit_pos_ < results_.size()) {
    *tuple = std::move(results_[emit_pos_++]);
    *has_next = true;
    return Status::OK();
  }
  *has_next = false;
  return Status::OK();
}

Status AdaptiveDivisionOperator::Close() {
  core_.reset();
  results_.clear();
  emit_pos_ = 0;
  return Status::OK();
}

void AdaptiveDivisionOperator::ExportGauges(GaugeList* gauges) const {
  gauges->emplace_back("replans", static_cast<double>(report_.events.size()));
  gauges->emplace_back("replan_checkpoints",
                       static_cast<double>(report_.checkpoints_run));
}

Result<std::unique_ptr<AdaptiveDivisionOperator>> PlanAdaptiveDivision(
    ExecContext* ctx, const DivisionQuery& query,
    const AdaptiveOptions& options) {
  RELDIV_ASSIGN_OR_RETURN(ResolvedDivision resolved, ResolveDivision(query));
  return std::make_unique<AdaptiveDivisionOperator>(ctx, query,
                                                    std::move(resolved),
                                                    options);
}

}  // namespace reldiv
