#include "exec/kernels/kernels.h"

#include <cstdint>
#include <limits>
#include <vector>

#include "common/bitmap.h"
#include "common/rng.h"
#include "common/tuple.h"
#include "common/value.h"
#include "exec/batch.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace reldiv {
namespace kernels {
namespace {

// Every width in this list crosses at least one interesting word boundary:
// sub-word, exact word, word+1, multi-word with and without a partial tail.
const size_t kWidths[] = {1, 5, 63, 64, 65, 127, 128, 130, 191, 192, 1000};

std::vector<int64_t> ProbeKeys() {
  std::vector<int64_t> keys = {0,
                               -1,
                               1,
                               42,
                               -42,
                               std::numeric_limits<int64_t>::min(),
                               std::numeric_limits<int64_t>::max(),
                               int64_t{1} << 32,
                               -(int64_t{1} << 32)};
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    keys.push_back(static_cast<int64_t>(rng.Next()));
  }
  return keys;
}

// --- Hashing ---------------------------------------------------------------

TEST(KernelHashTest, ClosedFormEqualsTupleHashAt) {
  // The load-bearing equality of the whole batched-probe design: the kernel
  // hash must be the exact value a TupleHashTable computes for a
  // single-int64-key probe, or kernelized probes would land in different
  // buckets than scalar ones.
  const std::vector<size_t> key0 = {0};
  for (int64_t k : ProbeKeys()) {
    const Tuple tuple{Value::Int64(k)};
    EXPECT_EQ(HashInt64Key(k), tuple.HashAt(key0)) << "key " << k;
  }
}

TEST(KernelHashTest, BatchedMatchesSingle) {
  const std::vector<int64_t> keys = ProbeKeys();
  std::vector<uint64_t> out(keys.size());
  HashInt64Keys(keys.data(), keys.size(), out.data());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(out[i], HashInt64Key(keys[i])) << "index " << i;
  }
}

TEST(KernelHashTest, ScalarAndSimdAgree) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD on this CPU";
  const std::vector<int64_t> keys = ProbeKeys();
  // Every size from 0 up exercises the vector main loop and scalar tail in
  // all phase combinations.
  for (size_t n = 0; n <= keys.size(); ++n) {
    std::vector<uint64_t> scalar(n + 1, 0xdead), simd(n + 1, 0xbeef);
    HashInt64KeysScalar(keys.data(), n, scalar.data());
    HashInt64KeysSimd(keys.data(), n, simd.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar[i], simd[i]) << "n=" << n << " i=" << i;
    }
  }
}

// --- Bitmap word kernels ---------------------------------------------------

TEST(KernelBitmapTest, AllWordsSetMatchesBitmapAllSet) {
  for (size_t bits : kWidths) {
    Bitmap bitmap(bits);
    // All clear.
    EXPECT_EQ(AllWordsSet(bitmap.words(), bits), bitmap.AllSet());
    // All set.
    for (size_t i = 0; i < bits; ++i) bitmap.Set(i);
    EXPECT_TRUE(bitmap.AllSet());
    EXPECT_TRUE(AllWordsSet(bitmap.words(), bits)) << "bits=" << bits;
    // Each single cleared bit must flip the answer — including the last bit
    // of the partial tail word, the classic masking bug.
    for (size_t hole : {size_t{0}, bits / 2, bits - 1}) {
      Bitmap holed(bits);
      for (size_t i = 0; i < bits; ++i) {
        if (i != hole) holed.Set(i);
      }
      EXPECT_FALSE(AllWordsSet(holed.words(), bits))
          << "bits=" << bits << " hole=" << hole;
      EXPECT_EQ(AllWordsSet(holed.words(), bits), holed.AllSet());
    }
  }
}

TEST(KernelBitmapTest, AllWordsSetIgnoresGarbageBeyondWidth) {
  // The arena hands out whole words; bits past num_bits are unspecified.
  // Set a garbage bit just past the width and make sure it neither helps
  // nor hurts.
  for (size_t bits : {size_t{1}, size_t{63}, size_t{65}, size_t{130}}) {
    const size_t words = Bitmap::WordsForBits(bits);
    std::vector<uint64_t> storage(words, 0);
    Bitmap bitmap = Bitmap::MapOnto(storage.data(), bits);
    for (size_t i = 0; i < bits; ++i) bitmap.Set(i);
    if (bits % 64 != 0) {
      storage[words - 1] &= ~(uint64_t{1} << (bits % 64));  // clear garbage
      EXPECT_TRUE(AllWordsSet(storage.data(), bits)) << "bits=" << bits;
      storage[words - 1] ^= uint64_t{1} << (bits % 64);  // set garbage
      EXPECT_TRUE(AllWordsSet(storage.data(), bits)) << "bits=" << bits;
    }
  }
}

TEST(KernelBitmapTest, ScalarAndSimdAllSetAgree) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD on this CPU";
  Rng rng(11);
  for (size_t bits : kWidths) {
    for (int round = 0; round < 32; ++round) {
      const size_t words = Bitmap::WordsForBits(bits);
      std::vector<uint64_t> storage(words);
      for (uint64_t& w : storage) {
        // Bias toward all-ones so the "true" branch is actually reached.
        w = (round % 2 == 0) ? ~uint64_t{0} : rng.Next() | rng.Next();
      }
      if (round == 0) {
        // Guaranteed all-set case.
      } else if (round == 1) {
        storage[rng.Next() % words] &= ~(uint64_t{1} << (rng.Next() % 64));
      }
      ASSERT_EQ(AllWordsSetScalar(storage.data(), bits),
                AllWordsSetSimd(storage.data(), bits))
          << "bits=" << bits << " round=" << round;
    }
  }
}

TEST(KernelBitmapTest, PopcountMatchesBitmapCountSet) {
  Rng rng(13);
  for (size_t bits : kWidths) {
    Bitmap bitmap(bits);
    size_t expected = 0;
    for (size_t i = 0; i < bits; ++i) {
      if (rng.Next() % 3 == 0) expected += bitmap.Set(i) ? 1 : 0;
    }
    EXPECT_EQ(bitmap.CountSet(), expected);
    EXPECT_EQ(PopcountWords(bitmap.words(), bitmap.num_words()), expected)
        << "bits=" << bits;
    if (SimdAvailable()) {
      EXPECT_EQ(PopcountWordsScalar(bitmap.words(), bitmap.num_words()),
                PopcountWordsSimd(bitmap.words(), bitmap.num_words()));
    }
  }
}

TEST(KernelBitmapTest, ClearWordsZeroes) {
  std::vector<uint64_t> storage(7, ~uint64_t{0});
  ClearWords(storage.data(), storage.size());
  for (uint64_t w : storage) EXPECT_EQ(w, 0u);
  ClearWords(storage.data(), 0);  // no-op, must not touch anything
}

TEST(KernelBitmapTest, SetBatchMatchesScalarSetLoop) {
  for (size_t bits : kWidths) {
    Bitmap batched(bits), looped(bits);
    std::vector<uint32_t> indices;
    for (size_t i = 0; i < bits; i += 3) {
      indices.push_back(static_cast<uint32_t>(i));
    }
    indices.push_back(static_cast<uint32_t>(bits - 1));  // tail bit
    indices.push_back(static_cast<uint32_t>(bits - 1));  // duplicate
    size_t newly = 0;
    for (uint32_t i : indices) newly += looped.Set(i) ? 1 : 0;
    EXPECT_EQ(batched.SetBatch(indices.data(), indices.size()), newly)
        << "bits=" << bits;
    EXPECT_EQ(batched.CountSet(), looped.CountSet());
    EXPECT_TRUE(batched.TestAllSet(indices.data(), indices.size()));
    if (bits > 2) {
      const uint32_t unset = 1;  // i+=3 stride never sets bit 1
      EXPECT_FALSE(batched.Test(unset));
      std::vector<uint32_t> with_hole = indices;
      with_hole.push_back(unset);
      EXPECT_FALSE(batched.TestAllSet(with_hole.data(), with_hole.size()));
    }
  }
}

// --- Compare kernel --------------------------------------------------------

TEST(KernelCompareTest, AllOpsMatchScalarSemantics) {
  Rng rng(17);
  std::vector<int64_t> values;
  for (int i = 0; i < 300; ++i) {
    // Small domain so every predicate sees both outcomes often.
    values.push_back(static_cast<int64_t>(rng.Next() % 16) - 8);
  }
  values.push_back(std::numeric_limits<int64_t>::min());
  values.push_back(std::numeric_limits<int64_t>::max());
  const int64_t rhs = 3;
  for (CmpOp op : {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt, CmpOp::kLe, CmpOp::kGt,
                   CmpOp::kGe}) {
    std::vector<uint8_t> mask(values.size(), 0xcc);
    const size_t matches =
        CompareInt64(values.data(), values.size(), op, rhs, mask.data());
    size_t expected_matches = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      const int64_t v = values[i];
      bool expect = false;
      switch (op) {
        case CmpOp::kEq: expect = v == rhs; break;
        case CmpOp::kNe: expect = v != rhs; break;
        case CmpOp::kLt: expect = v < rhs; break;
        case CmpOp::kLe: expect = v <= rhs; break;
        case CmpOp::kGt: expect = v > rhs; break;
        case CmpOp::kGe: expect = v >= rhs; break;
      }
      EXPECT_EQ(mask[i] != 0, expect) << "op " << static_cast<int>(op)
                                      << " value " << v;
      EXPECT_TRUE(mask[i] == 0 || mask[i] == 1) << "mask must be 0/1 bytes";
      expected_matches += expect ? 1 : 0;
    }
    EXPECT_EQ(matches, expected_matches);
    if (SimdAvailable()) {
      std::vector<uint8_t> simd_mask(values.size(), 0xcc);
      const size_t simd_matches = CompareInt64Simd(
          values.data(), values.size(), op, rhs, simd_mask.data());
      EXPECT_EQ(simd_matches, matches);
      EXPECT_EQ(simd_mask, mask);
    }
  }
}

TEST(KernelCompareTest, TailLengthsAgree) {
  if (!SimdAvailable()) GTEST_SKIP() << "no SIMD on this CPU";
  std::vector<int64_t> values;
  for (int64_t i = 0; i < 19; ++i) values.push_back(i % 5);
  for (size_t n = 0; n <= values.size(); ++n) {
    std::vector<uint8_t> scalar(n + 1, 9), simd(n + 1, 9);
    const size_t a =
        CompareInt64Scalar(values.data(), n, CmpOp::kEq, 2, scalar.data());
    const size_t b =
        CompareInt64Simd(values.data(), n, CmpOp::kEq, 2, simd.data());
    ASSERT_EQ(a, b) << "n=" << n;
    for (size_t i = 0; i < n; ++i) ASSERT_EQ(scalar[i], simd[i]);
  }
}

// --- Column extraction -----------------------------------------------------

TEST(KernelExtractTest, GathersAndRejects) {
  TupleBatch batch(8);
  *batch.AddSlotForOverwrite() = T(1, 10);
  *batch.AddSlotForOverwrite() = T(2, 20);
  *batch.AddSlotForOverwrite() = T(3, 30);
  std::vector<int64_t> out;
  ASSERT_TRUE(ExtractInt64Column(batch, 1, &out));
  EXPECT_EQ(out, (std::vector<int64_t>{10, 20, 30}));

  // A single non-int64 value anywhere in the column rejects the batch.
  *batch.AddSlotForOverwrite() =
      Tuple{Value::Int64(4), Value::String("forty")};
  EXPECT_FALSE(ExtractInt64Column(batch, 1, &out));
  // Column 0 is still all-int64.
  ASSERT_TRUE(ExtractInt64Column(batch, 0, &out));
  EXPECT_EQ(out, (std::vector<int64_t>{1, 2, 3, 4}));

  TupleBatch empty(4);
  ASSERT_TRUE(ExtractInt64Column(empty, 0, &out));
  EXPECT_TRUE(out.empty());
}

// --- Normalized sort keys --------------------------------------------------

TEST(KernelNormalizedKeyTest, OrderConsistentWithValueCompare) {
  std::vector<Value> values = {
      Value::Int64(std::numeric_limits<int64_t>::min()),
      Value::Int64(-1),
      Value::Int64(0),
      Value::Int64(1),
      Value::Int64(std::numeric_limits<int64_t>::max()),
      Value::Double(-2.5),
      Value::Double(0.0),
      Value::Double(3.75),
      Value::String(""),
      Value::String("a"),
      Value::String("ab"),
      Value::String("abcdefghij"),  // beyond the 8-byte prefix
      Value::String("abcdefghiz"),  // same prefix, different tail
      Value::String("b"),
  };
  for (const Value& a : values) {
    for (const Value& b : values) {
      const uint64_t ka = NormalizedKey(a);
      const uint64_t kb = NormalizedKey(b);
      // The one-way invariant: code order implies value order. Equal codes
      // promise nothing.
      if (ka < kb) {
        EXPECT_LT(a.Compare(b), 0)
            << a.ToString() << " vs " << b.ToString();
      } else if (ka > kb) {
        EXPECT_GT(a.Compare(b), 0)
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

TEST(KernelNormalizedKeyTest, DistinguishesWhereSafe) {
  // Not required for correctness, but the whole point of the codes: values
  // separated by more than the two payload bits the type tag displaces must
  // get distinct codes, or every comparison would fall back to the slow
  // path.
  EXPECT_NE(NormalizedKey(Value::Int64(0)), NormalizedKey(Value::Int64(4)));
  EXPECT_NE(NormalizedKey(Value::Int64(-1000)),
            NormalizedKey(Value::Int64(1000)));
  EXPECT_NE(NormalizedKey(Value::String("a")),
            NormalizedKey(Value::String("b")));
  // Ints within the same 4-value quantum share a code (the tag costs two
  // payload bits); the tie is broken by the full comparison.
  EXPECT_EQ(NormalizedKey(Value::Int64(1)), NormalizedKey(Value::Int64(2)));
  // Doubles deliberately collapse (NaN makes any prefix unsafe).
  EXPECT_EQ(NormalizedKey(Value::Double(1.0)),
            NormalizedKey(Value::Double(2.0)));
}

TEST(KernelLevelTest, DispatchIsResolved) {
  const Level level = ActiveLevel();
  EXPECT_TRUE(level == Level::kScalar || level == Level::kSimd);
  if (level == Level::kSimd) {
    EXPECT_TRUE(SimdAvailable());
  }
  EXPECT_STREQ(LevelName(Level::kScalar), "scalar");
  EXPECT_STREQ(LevelName(Level::kSimd), "simd");
}

}  // namespace
}  // namespace kernels
}  // namespace reldiv
