// Cross-cutting operator-contract tests: re-openability, mid-stream close,
// error propagation, and the helper operators (Spool, OwningOperator) that
// glue plans together.

#include <memory>

#include "division/count_filter.h"
#include "division/division.h"
#include "exec/database.h"
#include "exec/materialize.h"
#include "exec/mem_source.h"
#include "exec/scan.h"
#include "exec/sort.h"
#include "gtest/gtest.h"
#include "storage/record_file.h"
#include "tests/test_util.h"
#include "workload/generator.h"

namespace reldiv {
namespace {

class OperatorContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatabaseOptions options;
    options.pool_bytes = 0;
    ASSERT_OK_AND_ASSIGN(db_, Database::Open(options));
  }

  Schema TwoCol() {
    return Schema{Field{"a", ValueType::kInt64},
                  Field{"b", ValueType::kInt64}};
  }

  std::unique_ptr<Database> db_;
};

TEST_F(OperatorContractTest, ScanReopensFromTheStart) {
  ASSERT_OK_AND_ASSIGN(Relation rel, db_->CreateTable("t", TwoCol()));
  for (int i = 0; i < 10; ++i) ASSERT_OK(db_->Insert("t", T(i, i)));
  ScanOperator scan(db_->ctx(), rel);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> first, CollectAll(&scan));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> second, CollectAll(&scan));
  EXPECT_EQ(first, second);
}

TEST_F(OperatorContractTest, SortReopensFromTheStart) {
  std::vector<Tuple> input = {T(3, 0), T(1, 0), T(2, 0)};
  SortSpec spec;
  spec.keys = {0};
  SortOperator sorter(db_->ctx(),
                      std::make_unique<MemSourceOperator>(TwoCol(), input),
                      spec);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> first, CollectAll(&sorter));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> second, CollectAll(&sorter));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.front(), T(1, 0));
}

TEST_F(OperatorContractTest, DivisionPlanReopens) {
  GeneratedWorkload workload = GenerateWorkload(PaperCell(5, 6));
  Relation dividend, divisor;
  ASSERT_OK(LoadWorkload(db_.get(), workload, "re", &dividend, &divisor));
  DivisionQuery query{dividend, divisor, {"divisor_id"}};
  ASSERT_OK_AND_ASSIGN(
      std::unique_ptr<Operator> plan,
      MakeDivisionPlan(db_->ctx(), query, DivisionAlgorithm::kHashDivision));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> first, CollectAll(plan.get()));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> second, CollectAll(plan.get()));
  EXPECT_EQ(Sorted(std::move(first)), Sorted(std::move(second)));
}

TEST_F(OperatorContractTest, CloseWithoutDrainingReleasesPins) {
  ASSERT_OK_AND_ASSIGN(Relation rel, db_->CreateTable("t", TwoCol()));
  for (int i = 0; i < 5000; ++i) ASSERT_OK(db_->Insert("t", T(i, i)));
  ScanOperator scan(db_->ctx(), rel);
  ASSERT_OK(scan.Open());
  Tuple tuple;
  bool has = false;
  ASSERT_OK(scan.Next(&tuple, &has));
  ASSERT_TRUE(has);
  ASSERT_OK(scan.Close());  // page pinned by the scan must be released
  ASSERT_OK(db_->buffer_manager()->FlushAll());
  ASSERT_OK(db_->buffer_manager()->DropAll());  // fails if a pin leaked
}

TEST_F(OperatorContractTest, SpoolOperatorReopensByRespooling) {
  std::vector<Tuple> input = {T(1, 1), T(2, 2)};
  SpoolOperator spool(db_->ctx(),
                      std::make_unique<MemSourceOperator>(TwoCol(), input));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> first, CollectAll(&spool));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> second, CollectAll(&spool));
  EXPECT_EQ(first, second);
}

TEST_F(OperatorContractTest, OwningOperatorKeepsStoresAlive) {
  // Build a store, wrap a scan of it in OwningOperator, drop every other
  // reference, and drain: the data must still be there.
  auto store = std::make_unique<RecordFile>(db_->disk(),
                                            db_->buffer_manager(), "owned");
  Relation rel{TwoCol(), store.get()};
  ASSERT_OK(AppendAll(rel, {T(9, 9)}));
  std::vector<std::unique_ptr<RecordStore>> owned;
  owned.push_back(std::move(store));
  OwningOperator plan(std::make_unique<ScanOperator>(db_->ctx(), rel),
                      std::move(owned));
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&plan));
  EXPECT_EQ(out, std::vector<Tuple>{T(9, 9)});
}

TEST_F(OperatorContractTest, GroupCountFilterRejectsNonIntCountColumn) {
  Schema bad{Field{"g", ValueType::kInt64}, Field{"count", ValueType::kString}};
  std::vector<Tuple> rows = {Tuple{Value::Int64(1), Value::String("x")}};
  ASSERT_OK_AND_ASSIGN(Relation divisor,
                       db_->CreateTable("divisor",
                                        Schema{Field{"d", ValueType::kInt64}}));
  GroupCountFilterOperator filter(
      db_->ctx(), std::make_unique<MemSourceOperator>(bad, rows), divisor);
  ASSERT_OK(filter.Open());
  Tuple tuple;
  bool has = false;
  EXPECT_TRUE(filter.Next(&tuple, &has).IsInvalidArgument());
  ASSERT_OK(filter.Close());
}

TEST_F(OperatorContractTest, MaterializeIntoVirtualDeviceAndBack) {
  std::vector<Tuple> input;
  for (int i = 0; i < 1000; ++i) input.push_back(T(i, -i));
  ASSERT_OK_AND_ASSIGN(Relation tmp, db_->CreateTempTable("vd", TwoCol()));
  MemSourceOperator src(TwoCol(), input);
  ASSERT_OK_AND_ASSIGN(uint64_t n, Materialize(&src, tmp.store));
  EXPECT_EQ(n, 1000u);
  ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, ReadAll(db_->ctx(), tmp));
  EXPECT_EQ(out, input);
}

TEST_F(OperatorContractTest, EmptyRelationThroughEveryUnaryOperator) {
  ASSERT_OK_AND_ASSIGN(Relation rel, db_->CreateTable("empty", TwoCol()));
  {
    ScanOperator scan(db_->ctx(), rel);
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&scan));
    EXPECT_TRUE(out.empty());
  }
  {
    SortSpec spec;
    spec.keys = {0};
    SortOperator sorter(db_->ctx(),
                        std::make_unique<ScanOperator>(db_->ctx(), rel),
                        spec);
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&sorter));
    EXPECT_TRUE(out.empty());
  }
  {
    SpoolOperator spool(db_->ctx(),
                        std::make_unique<ScanOperator>(db_->ctx(), rel));
    ASSERT_OK_AND_ASSIGN(std::vector<Tuple> out, CollectAll(&spool));
    EXPECT_TRUE(out.empty());
  }
}

}  // namespace
}  // namespace reldiv
