#ifndef RELDIV_STORAGE_BTREE_H_
#define RELDIV_STORAGE_BTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "storage/buffer_manager.h"
#include "storage/extent_file.h"
#include "storage/rid.h"

namespace reldiv {

/// Disk-page B+-tree mapping byte-string keys to Rids — one of the §5.1
/// substrate services ("extent-based files, records, B+-trees, scans, ...").
/// Keys are arbitrary encoded byte strings (see RowCodec); duplicate keys
/// are allowed and kept in insertion order. Nodes live on pages of an
/// ExtentFile and are accessed through the buffer manager.
class BTree {
 public:
  BTree(SimDisk* disk, BufferManager* buffer_manager);

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Inserts (key, rid); splits propagate up to the root.
  Status Insert(Slice key, Rid rid);

  /// All Rids stored under exactly `key`, in insertion order.
  Result<std::vector<Rid>> Lookup(Slice key);

  /// True if at least one entry with `key` exists.
  Result<bool> Contains(Slice key);

  /// Removes the entry (key, rid). Lazy deletion: the leaf entry is removed
  /// in place with no rebalancing (sparse leaves stay linked), the common
  /// discipline for append-mostly workloads. NotFound if no such entry.
  Status Erase(Slice key, Rid rid);

  uint64_t num_entries() const { return num_entries_; }
  uint32_t height() const { return height_; }

  /// Forward iterator over (key, rid) pairs in key order. Reads one leaf at
  /// a time into memory, so no page stays pinned between calls.
  class Iterator {
   public:
    explicit Iterator(BTree* tree) : tree_(tree) {}

    /// Positions at the first entry (invalid if the tree is empty).
    Status SeekToFirst();

    /// Positions at the first entry with key >= `key`.
    Status Seek(Slice key);

    Status Next();

    bool Valid() const { return valid_; }
    Slice key() const { return Slice(entries_[index_].key); }
    Rid rid() const { return entries_[index_].rid; }

   private:
    friend class BTree;
    struct LeafEntry {
      std::string key;
      Rid rid;
    };

    Status LoadLeaf(uint64_t leaf_page);

    BTree* tree_;
    std::vector<LeafEntry> entries_;
    size_t index_ = 0;
    uint64_t next_leaf_ = 0;  ///< page+1; 0 = none
    bool valid_ = false;
  };

  /// Consistency check walking the whole tree: key order within and across
  /// nodes, separator correctness, leaf chain completeness. Test hook.
  Status CheckInvariants();

 private:
  friend class Iterator;

  struct Entry {
    std::string key;
    Rid rid{};          // leaf payload
    uint64_t child = 0;  // internal payload (file-local page)
  };

  struct Node {
    bool is_leaf = true;
    uint64_t leftmost_child = 0;  // internal only
    uint64_t next_leaf = 0;       // leaf only; page+1, 0 = none
    std::vector<Entry> entries;
  };

  struct SplitResult {
    bool split = false;
    std::string separator;
    uint64_t right_page = 0;
  };

  Result<Node> ReadNode(uint64_t local_page);
  Status WriteNode(uint64_t local_page, const Node& node);
  uint64_t AllocateNodePage();
  size_t NodeBytes(const Node& node) const;
  Result<SplitResult> InsertInto(uint64_t local_page, Slice key, Rid rid);
  /// Leaf page containing the first key >= `key`.
  Result<uint64_t> DescendToLeaf(Slice key);
  Status CheckNode(uint64_t page, uint32_t depth, const std::string* lower,
                   const std::string* upper, uint64_t* leaf_count,
                   uint32_t* leaf_depth);

  BufferManager* buffer_manager_;
  ExtentFile file_;
  uint64_t root_page_ = 0;
  uint32_t height_ = 1;
  uint64_t num_entries_ = 0;
};

}  // namespace reldiv

#endif  // RELDIV_STORAGE_BTREE_H_
