#ifndef RELDIV_EXEC_SORT_AGGREGATE_H_
#define RELDIV_EXEC_SORT_AGGREGATE_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/aggregate.h"
#include "exec/exec_context.h"
#include "exec/operator.h"

namespace reldiv {

/// Streaming aggregate over an input sorted on its group columns (§2.2.1):
/// a single scan determines each group's aggregates. (The preferred plan —
/// the paper's "obvious optimization" — is aggregation *during* sorting via
/// SortOperator's collapse option; this operator is the classic standalone
/// form and is also useful on inputs that arrive sorted.)
class SortAggregateOperator : public Operator {
 public:
  SortAggregateOperator(ExecContext* ctx, std::unique_ptr<Operator> child,
                        std::vector<size_t> group_indices,
                        std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status Close() override;

 private:
  Status BuildSchema();

  ExecContext* ctx_;
  std::unique_ptr<Operator> child_;
  std::vector<size_t> group_indices_;
  std::vector<AggSpec> aggs_;
  Schema schema_;
  Status init_status_;

  Tuple pending_;      ///< first tuple of the current group
  bool have_pending_ = false;
  bool input_done_ = false;
};

}  // namespace reldiv

#endif  // RELDIV_EXEC_SORT_AGGREGATE_H_
