#include "storage/virtual_device.h"

#include "testing/failpoint.h"

namespace reldiv {

VirtualDevice::VirtualDevice(MemoryPool* pool, std::string name)
    : name_(std::move(name)), pool_(pool) {}

VirtualDevice::~VirtualDevice() {
  if (pool_ != nullptr) pool_->Release(bytes_reserved_);
}

Result<Rid> VirtualDevice::Append(Slice record) {
  RELDIV_FAILPOINT("virtual_device/append");
  // Reserve pool memory page-wise so virtual devices compete with the
  // buffer pool at the same granularity.
  while (pool_ != nullptr && bytes_used_ + record.size() > bytes_reserved_) {
    if (!pool_->Reserve(kPageSize)) {
      return Status::ResourceExhausted("virtual device '" + name_ +
                                       "': memory pool exhausted");
    }
    bytes_reserved_ += kPageSize;
  }
  const uint64_t index = records_.size();
  records_.emplace_back(record.data(), record.size());
  bytes_used_ += record.size();
  BumpVersion();
  return Rid{static_cast<uint32_t>(index >> 16),
             static_cast<uint16_t>(index & 0xffff)};
}

class VirtualDevice::DeviceScan : public RecordScan {
 public:
  explicit DeviceScan(VirtualDevice* device) : device_(device) {}

  Status Next(RecordRef* ref, bool* has_next) override {
    if (next_ >= device_->records_.size()) {
      *has_next = false;
      return Status::OK();
    }
    const std::string& record = device_->records_[next_];
    ref->rid = Rid{static_cast<uint32_t>(next_ >> 16),
                   static_cast<uint16_t>(next_ & 0xffff)};
    ref->payload = Slice(record.data(), record.size());
    next_++;
    *has_next = true;
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  VirtualDevice* device_;
  size_t next_ = 0;
};

Result<std::unique_ptr<RecordScan>> VirtualDevice::OpenScan() {
  return std::unique_ptr<RecordScan>(std::make_unique<DeviceScan>(this));
}

}  // namespace reldiv
