// Batch-vs-tuple execution: throughput of the batch-native
// scan → filter → hash-division pipeline as a function of the batch size.
//
// The batch-size-1 row is the tuple lane: the plan is drained through the
// classic Volcano Next() protocol (CollectAllTupleAtATime, execution batch
// capacity 1), paying one virtual-call round trip through the whole operator
// chain per tuple — the paper's §5.1 execution model. The remaining rows
// drain the same plan through NextBatch() at increasing batch capacities.
// Batching amortizes the iteration protocol and overlaps the memory stalls
// of independent hash probes without changing any of the per-tuple work, so
// the quotient and the Table 1 operation counts must be identical in every
// row; the bench fails if they are not.
//
// The workload is scan-heavy on purpose: five sixths of the dividend fails
// the filter predicate, so most tuples pay the iteration protocol and only
// the surviving sixth pays the division probes. That is the regime the
// refactor targets — per-tuple interpretation overhead dominating cheap
// per-tuple work — and it is where tuple-at-a-time execution loses the most.

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "division/hash_division.h"
#include "exec/filter.h"
#include "exec/scan.h"

namespace reldiv {
namespace {

constexpr size_t kBatchSizes[] = {1, 64, 256, 1024, 4096};

struct Measurement {
  size_t batch_size = 0;
  bool tuple_lane = false;
  double wall_ms = 0;
  double cpu_ms = 0;
  std::vector<double> wall_samples_ms;
  CpuCounters counters;
  uint64_t quotient_tuples = 0;
  std::vector<Tuple> quotient;
};

Status Run(bench::BenchReporter* report) {
  const int kRepetitions = bench::SmokeMode() ? 2 : 5;
  // Dividend: 100k matching tuples (2000 candidates × 50 divisor tuples)
  // plus 500k foreign ones the filter removes (selectivity ~17%).
  // Smoke mode shrinks both sides ~25x.
  WorkloadSpec spec;
  spec.divisor_cardinality = 50;
  spec.quotient_candidates = bench::SmokeMode() ? 80 : 2000;
  spec.candidate_completeness = 1.0;
  spec.nonmatching_tuples = bench::SmokeMode() ? 20000 : 500000;
  spec.seed = 77;
  GeneratedWorkload workload = GenerateWorkload(spec);
  const uint64_t dividend_tuples = workload.dividend.size();

  DatabaseOptions db_options;
  db_options.pool_bytes = 0;  // unbounded pool: keep the pipeline CPU-bound
  RELDIV_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(db_options));
  Relation dividend, divisor;
  RELDIV_RETURN_NOT_OK(
      LoadWorkload(db.get(), workload, "bt", &dividend, &divisor));
  const int64_t divisor_count =
      static_cast<int64_t>(spec.divisor_cardinality);

  auto make_plan = [&]() -> std::unique_ptr<Operator> {
    // Dividend is (quotient_id, divisor_id); valid divisor values are
    // [0, |S|), foreign ones lie above.
    auto scan = std::make_unique<ScanOperator>(db->ctx(), dividend);
    auto filter = std::make_unique<FilterOperator>(
        std::move(scan), [divisor_count](const Tuple& t) {
          return t.value(1).int64() < divisor_count;
        });
    DivisionOptions options;
    options.expected_divisor_cardinality = spec.divisor_cardinality;
    options.expected_quotient_cardinality = spec.quotient_candidates;
    options.early_output = true;  // fully pipelined in both lanes (§3.3)
    return std::make_unique<HashDivisionOperator>(
        db->ctx(), std::move(filter),
        std::make_unique<ScanOperator>(db->ctx(), divisor),
        std::vector<size_t>{1}, std::vector<size_t>{0}, options);
  };

  {
    auto plan = make_plan();
    if (!plan->IsBatchNative()) {
      return Status::Internal("pipeline is expected to be batch-native");
    }
  }

  std::printf("=== Batch-vs-tuple execution: scan -> filter(17%%) -> "
              "hash-division (early output) ===\n\n");
  std::printf("dividend %llu tuples, divisor %llu, quotient %llu; best of %d "
              "runs per size\n",
              static_cast<unsigned long long>(dividend_tuples),
              static_cast<unsigned long long>(spec.divisor_cardinality),
              static_cast<unsigned long long>(spec.quotient_candidates),
              kRepetitions);
  std::printf("batch size 1 = Volcano Next() drain (tuple-at-a-time "
              "protocol)\n\n");
  std::printf("  %10s | %10s %12s %14s %10s\n", "batch size", "wall ms",
              "cpu-model ms", "tuples/sec", "speedup");
  bench::Rule(66);

  std::vector<Measurement> measurements;
  for (size_t batch_size : kBatchSizes) {
    Measurement m;
    m.batch_size = batch_size;
    m.tuple_lane = batch_size == 1;
    m.wall_ms = 1e300;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      db->ctx()->set_batch_capacity(batch_size);
      RELDIV_RETURN_NOT_OK(db->buffer_manager()->FlushAll());
      RELDIV_RETURN_NOT_OK(db->buffer_manager()->DropAll());
      db->ctx()->ResetMoveAccumulator();
      const CpuCounters before = *db->counters();
      auto plan = make_plan();
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<Tuple> quotient;
      if (m.tuple_lane) {
        RELDIV_ASSIGN_OR_RETURN(quotient,
                                CollectAllTupleAtATime(plan.get()));
      } else {
        RELDIV_ASSIGN_OR_RETURN(quotient, CollectAll(plan.get(), batch_size));
      }
      const auto t1 = std::chrono::steady_clock::now();
      const double wall_ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      CpuCounters delta = *db->counters();
      delta.comparisons -= before.comparisons;
      delta.hashes -= before.hashes;
      delta.moves -= before.moves;
      delta.bit_ops -= before.bit_ops;
      if (rep == 0) {
        m.counters = delta;
        m.quotient_tuples = quotient.size();
        std::sort(quotient.begin(), quotient.end());
        m.quotient = std::move(quotient);
        m.cpu_ms = CpuCostMs(delta);
      } else if (delta.comparisons != m.counters.comparisons ||
                 delta.hashes != m.counters.hashes ||
                 delta.moves != m.counters.moves ||
                 delta.bit_ops != m.counters.bit_ops) {
        return Status::Internal("cost counters drifted between repetitions");
      }
      m.wall_ms = std::min(m.wall_ms, wall_ms);
      m.wall_samples_ms.push_back(wall_ms);
    }
    measurements.push_back(std::move(m));
  }
  db->ctx()->set_batch_capacity(kDefaultBatchCapacity);

  // Cross-lane invariants: the tuple lane and every batch size must produce
  // the identical quotient and identical Table 1 operation counts.
  const Measurement& base = measurements.front();
  for (const Measurement& m : measurements) {
    if (m.quotient != base.quotient) {
      return Status::Internal("quotient differs across batch sizes");
    }
    if (m.counters.comparisons != base.counters.comparisons ||
        m.counters.hashes != base.counters.hashes ||
        m.counters.moves != base.counters.moves ||
        m.counters.bit_ops != base.counters.bit_ops) {
      return Status::Internal("cost counters differ across batch sizes");
    }
  }

  for (const Measurement& m : measurements) {
    const double tuples_per_sec =
        static_cast<double>(dividend_tuples) / (m.wall_ms / 1000.0);
    const double speedup = base.wall_ms / m.wall_ms;
    std::printf("  %10zu | %10.2f %12.2f %14.0f %9.2fx\n", m.batch_size,
                m.wall_ms, m.cpu_ms, tuples_per_sec, speedup);
  }
  std::printf("\nquotient and Table 1 counters identical across the tuple "
              "lane and all batch sizes\n(Comp %llu, Hash %llu, Move %llu, "
              "Bit %llu)\n\n",
              static_cast<unsigned long long>(base.counters.comparisons),
              static_cast<unsigned long long>(base.counters.hashes),
              static_cast<unsigned long long>(base.counters.moves),
              static_cast<unsigned long long>(base.counters.bit_ops));

  // Machine-readable mirror of the table above, one JSON record per size.
  for (const Measurement& m : measurements) {
    const double tuples_per_sec =
        static_cast<double>(dividend_tuples) / (m.wall_ms / 1000.0);
    std::printf(
        "{\"bench\":\"batch_vs_tuple\",\"batch_size\":%zu,"
        "\"lane\":\"%s\",\"wall_ms\":%.3f,\"cpu_ms\":%.3f,"
        "\"comparisons\":%llu,\"hashes\":%llu,\"moves\":%llu,"
        "\"bit_ops\":%llu,\"dividend_tuples\":%llu,"
        "\"quotient_tuples\":%llu,\"tuples_per_sec\":%.0f,"
        "\"speedup_vs_batch_1\":%.3f}\n",
        m.batch_size, m.tuple_lane ? "tuple" : "batch", m.wall_ms, m.cpu_ms,
        static_cast<unsigned long long>(m.counters.comparisons),
        static_cast<unsigned long long>(m.counters.hashes),
        static_cast<unsigned long long>(m.counters.moves),
        static_cast<unsigned long long>(m.counters.bit_ops),
        static_cast<unsigned long long>(dividend_tuples),
        static_cast<unsigned long long>(m.quotient_tuples), tuples_per_sec,
        base.wall_ms / m.wall_ms);
    bench::BenchRow* row = report->AddRow(
        (m.tuple_lane ? std::string("tuple-lane batch=")
                      : std::string("batch-lane batch=")) +
        std::to_string(m.batch_size));
    row->wall_ns.reserve(m.wall_samples_ms.size());
    for (double sample : m.wall_samples_ms) row->AddWallMs(sample);
    row->counters = m.counters;
    row->AddValue("best_wall_ms", m.wall_ms);
    row->AddValue("cpu_ms", m.cpu_ms);
    row->AddValue("tuples_per_sec", tuples_per_sec);
    row->AddValue("speedup_vs_batch_1", base.wall_ms / m.wall_ms);
    row->AddValue("quotient_tuples", static_cast<double>(m.quotient_tuples));
  }
  return Status::OK();
}

}  // namespace
}  // namespace reldiv

int main() {
  reldiv::bench::BenchReporter report("batch_vs_tuple");
  report.AddParam("smoke", reldiv::bench::SmokeMode() ? 1 : 0);
  const reldiv::Status status = reldiv::Run(&report);
  if (!status.ok()) {
    std::fprintf(stderr, "batch_vs_tuple failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return report.WriteFile() ? 0 : 1;
}
