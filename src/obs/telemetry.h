#ifndef RELDIV_OBS_TELEMETRY_H_
#define RELDIV_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/histogram.h"

namespace reldiv {

/// Process-wide telemetry level. Unlike the per-query QueryProfile
/// (obs/metrics.h), these metrics are always-on and outlive any single
/// query — they feed service-level dashboards and the cost-model drift
/// store.
///
///   kOff      — instrumentation sites do nothing (one relaxed load + a
///               predicted branch).
///   kCounting — counters and gauges update (one relaxed atomic add each);
///               no clocks are read, no histograms recorded. The default.
///   kSampling — additionally reads clocks and records latency/size
///               histograms (grant latency, transfer sizes, worker
///               idle/busy, query wall time).
///
/// The overhead contract (DESIGN.md §14, enforced by
/// bench/telemetry_overhead.cc): with telemetry compiled in but not
/// sampling, each instrumented site costs at most a relaxed atomic add.
/// Mutexes appear only at registration and snapshot/merge time.
enum class TelemetryMode : int { kOff = 0, kCounting = 1, kSampling = 2 };

/// Global mode switch. A plain relaxed atomic — instrumentation sites load
/// it on every hit, so mode changes take effect immediately without
/// synchronizing with in-flight updates. The initial value comes from
/// RELDIV_TELEMETRY (off|count|sample; default count), parsed once at the
/// first registry touch or the first SetMode, whichever happens first — an
/// explicit SetMode therefore always wins over the environment default.
class Telemetry {
 public:
  static TelemetryMode mode() {
    return static_cast<TelemetryMode>(mode_.load(std::memory_order_relaxed));
  }
  /// Sets the mode and returns the previous one (tests/benches toggle and
  /// restore around measured sections). Touches the registry first so the
  /// one-time RELDIV_TELEMETRY application cannot later clobber this call.
  static TelemetryMode SetMode(TelemetryMode mode);

  /// True when counters/gauges should update (kCounting or kSampling).
  static bool counting() {
    return mode_.load(std::memory_order_relaxed) >=
           static_cast<int>(TelemetryMode::kCounting);
  }
  /// True when clock reads and histogram records are wanted.
  static bool sampling() {
    return mode_.load(std::memory_order_relaxed) ==
           static_cast<int>(TelemetryMode::kSampling);
  }

 private:
  friend class MetricRegistry;
  static std::atomic<int> mode_;
};

/// Monotone counter. Update is a single relaxed atomic add; reads are for
/// exporters and assertions. Created and owned by the MetricRegistry, which
/// never destroys one — cached pointers stay valid for the process
/// lifetime.
class TelemetryCounter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  TelemetryCounter() = default;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

/// Last-value / high-water gauge with relaxed atomic updates.
class TelemetryGauge {
 public:
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Monotone high-water update (relaxed CAS loop; see Histogram::Record).
  void UpdateMax(uint64_t v) {
    uint64_t seen = value_.load(std::memory_order_relaxed);
    while (v > seen && !value_.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricRegistry;
  TelemetryGauge() = default;
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }
  std::atomic<uint64_t> value_{0};
};

/// Process-wide registry of counters, gauges, and histograms.
///
/// Usage pattern: an instrumented component calls FindOrCreate* once (a
/// mutex acquisition) and caches the returned pointer — typically in a
/// function-local static struct — then updates through the pointer on the
/// hot path with no further registry involvement. Registered objects are
/// never destroyed; the registry itself is intentionally leaked (like
/// FailpointRegistry) so late-exiting threads can still record.
///
/// Metrics may carry one label (e.g. {lane="3"}, {algorithm="hash
/// division"}); the (name, label) pair identifies the instrument.
/// Registration sites must pass constants from common/metric_names.h —
/// tools/analyze.py (telemetry-names) rejects raw string literals.
class MetricRegistry {
 public:
  /// The process registry. First touch applies the RELDIV_TELEMETRY mode
  /// override (see Telemetry).
  static MetricRegistry& Global();

  TelemetryCounter* FindOrCreateCounter(const std::string& name,
                                        const std::string& label_key = "",
                                        const std::string& label_value = "");
  TelemetryGauge* FindOrCreateGauge(const std::string& name,
                                    const std::string& label_key = "",
                                    const std::string& label_value = "");
  Histogram* FindOrCreateHistogram(const std::string& name,
                                   const std::string& label_key = "",
                                   const std::string& label_value = "");

  /// Number of registered instruments (all three kinds).
  size_t size() const;

  /// Prometheus/OpenMetrics text exposition: `# TYPE` headers, labelled
  /// sample lines, histograms as cumulative `_bucket{le=...}` series plus
  /// `_sum`/`_count`.
  std::string ToPrometheusText() const;

  /// Schema-v2 JSON snapshot:
  /// {"schema_version":2,"mode":...,"counters":{...},"gauges":{...},
  ///  "histograms":{...}} with labelled instruments keyed
  /// `name{key="value"}` exactly as in the Prometheus exposition.
  std::string ToJson() const;

  /// Zeroes every registered value (registrations and cached pointers stay
  /// valid). Test/bench isolation only — not synchronized against
  /// concurrent updates beyond each store being atomic.
  void ResetAllForTest();

 private:
  MetricRegistry() = default;

  /// Guards the instrument maps (registration and export); never held on a
  /// metric update path.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<TelemetryCounter>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<TelemetryGauge>> gauges_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace reldiv

#endif  // RELDIV_OBS_TELEMETRY_H_
