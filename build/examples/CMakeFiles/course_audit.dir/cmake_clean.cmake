file(REMOVE_RECURSE
  "CMakeFiles/course_audit.dir/course_audit.cpp.o"
  "CMakeFiles/course_audit.dir/course_audit.cpp.o.d"
  "course_audit"
  "course_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/course_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
