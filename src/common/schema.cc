#include "common/schema.h"

#include <algorithm>

namespace reldiv {

Result<size_t> Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "' in " + ToString());
}

Result<std::vector<size_t>> Schema::FieldIndices(
    const std::vector<std::string>& names) const {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    RELDIV_ASSIGN_OR_RETURN(size_t idx, FieldIndex(name));
    out.push_back(idx);
  }
  return out;
}

Schema Schema::Project(const std::vector<size_t>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (size_t idx : indices) out.push_back(fields_[idx]);
  return Schema(std::move(out));
}

std::vector<size_t> Schema::ComplementIndices(
    const std::vector<size_t>& indices) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (std::find(indices.begin(), indices.end(), i) == indices.end()) {
      out.push_back(i);
    }
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace reldiv
