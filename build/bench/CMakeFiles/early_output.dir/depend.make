# Empty dependencies file for early_output.
# This may be replaced when dependencies are built.
