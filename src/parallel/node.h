#ifndef RELDIV_PARALLEL_NODE_H_
#define RELDIV_PARALLEL_NODE_H_

#include <cstddef>
#include <memory>

#include "common/counters.h"
#include "exec/exec_context.h"
#include "storage/buffer_manager.h"
#include "storage/disk.h"
#include "storage/memory_manager.h"

namespace reldiv {

/// One processor of the simulated shared-nothing machine (§6, GAMMA-style):
/// a private disk, private memory pool, private buffer manager and private
/// CPU counters — nothing shared except the interconnect. Worker threads
/// touch only their own node's state.
class WorkerNode {
 public:
  /// `pool_bytes` = 0 means unbounded local memory.
  explicit WorkerNode(size_t node_id, size_t pool_bytes = 0);

  WorkerNode(const WorkerNode&) = delete;
  WorkerNode& operator=(const WorkerNode&) = delete;

  size_t node_id() const { return node_id_; }
  ExecContext* ctx() { return ctx_.get(); }
  CpuCounters* counters() { return &counters_; }
  MemoryPool* pool() { return pool_.get(); }

 private:
  size_t node_id_;
  std::unique_ptr<SimDisk> disk_;
  std::unique_ptr<MemoryPool> pool_;
  std::unique_ptr<BufferManager> buffer_manager_;
  CpuCounters counters_;
  std::unique_ptr<ExecContext> ctx_;
};

}  // namespace reldiv

#endif  // RELDIV_PARALLEL_NODE_H_
