#ifndef RELDIV_EXEC_PROJECT_H_
#define RELDIV_EXEC_PROJECT_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/operator.h"

namespace reldiv {

/// Projection to a column subset (no duplicate elimination; combine with
/// SortOperator{collapse} or hash aggregation when set semantics are
/// needed — duplicate handling is a first-class topic of the paper).
///
/// Batch-native when its child is: NextBatch() pulls a child batch into an
/// internal scratch buffer and projects into the caller's reused slots.
class ProjectOperator : public Operator {
 public:
  ProjectOperator(std::unique_ptr<Operator> child,
                  std::vector<size_t> indices)
      : child_(std::move(child)),
        indices_(std::move(indices)),
        schema_(child_->output_schema().Project(indices_)) {}

  const Schema& output_schema() const override { return schema_; }

  Status Open() override { return child_->Open(); }

  Status Next(Tuple* tuple, bool* has_next) override {
    Tuple in;
    bool has = false;
    RELDIV_RETURN_NOT_OK(child_->Next(&in, &has));
    if (!has) {
      *has_next = false;
      return Status::OK();
    }
    *tuple = in.Project(indices_);
    *has_next = true;
    return Status::OK();
  }

  Status NextBatch(TupleBatch* batch, bool* has_more) override {
    if (scratch_.capacity() != batch->capacity()) {
      scratch_.ResetCapacity(batch->capacity());
    }
    bool child_more = false;
    RELDIV_RETURN_NOT_OK(child_->NextBatch(&scratch_, &child_more));
    batch->Clear();
    for (const Tuple& in : scratch_) {
      Tuple* slot = batch->AddSlot();
      for (size_t idx : indices_) slot->Append(in.value(idx));
    }
    *has_more = child_more;
    return Status::OK();
  }

  bool IsBatchNative() const override { return child_->IsBatchNative(); }

  Status Close() override { return child_->Close(); }

 private:
  std::unique_ptr<Operator> child_;
  std::vector<size_t> indices_;
  Schema schema_;
  TupleBatch scratch_;
};

}  // namespace reldiv

#endif  // RELDIV_EXEC_PROJECT_H_
