# Empty compiler generated dependencies file for parallel_scaleup.
# This may be replaced when dependencies are built.
