# Empty compiler generated dependencies file for overflow_partitioning.
# This may be replaced when dependencies are built.
