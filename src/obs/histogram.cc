#include "obs/histogram.h"

#include <cmath>

namespace reldiv {

HistogramSnapshot& HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  return *this;
}

uint64_t HistogramSnapshot::ValueAtPercentile(double percentile) const {
  if (count == 0) return 0;
  if (percentile < 0) percentile = 0;
  if (percentile > 100) percentile = 100;
  // Rank of the target value (1-based): ceil(p/100 * count), at least 1 so
  // p=0 reports the smallest recorded bucket.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(percentile / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return Histogram::BucketUpperBound(i);
  }
  return max;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets, 0);
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    total += c;
  }
  // Derive count from the buckets actually read so the snapshot is
  // self-consistent even when records are in flight.
  snap.count = total;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

void Histogram::Reset() {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string HistogramSnapshotToJson(const HistogramSnapshot& snapshot) {
  std::string out = "{\"count\":" + std::to_string(snapshot.count) +
                    ",\"sum\":" + std::to_string(snapshot.sum) +
                    ",\"max\":" + std::to_string(snapshot.max);
  constexpr struct {
    const char* label;
    double pct;
  } kPercentiles[] = {{"p50", 50.0}, {"p90", 90.0}, {"p99", 99.0}};
  for (const auto& p : kPercentiles) {
    out += ",\"" + std::string(p.label) +
           "\":" + std::to_string(snapshot.ValueAtPercentile(p.pct));
  }
  out += ",\"buckets\":[";
  bool first = true;
  for (size_t i = 0; i < snapshot.buckets.size(); ++i) {
    if (snapshot.buckets[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    out += "[" + std::to_string(Histogram::BucketLowerBound(i)) + "," +
           std::to_string(snapshot.buckets[i]) + "]";
  }
  out += "]}";
  return out;
}

}  // namespace reldiv
