# Empty compiler generated dependencies file for hash_division_core_test.
# This may be replaced when dependencies are built.
