#ifndef RELDIV_DIVISION_NAIVE_DIVISION_H_
#define RELDIV_DIVISION_NAIVE_DIVISION_H_

#include <memory>
#include <utility>
#include <vector>

#include "exec/exec_context.h"
#include "exec/operator.h"

namespace reldiv {

/// Naive sort-based division (§2.1, Smith 1975). Preconditions:
///  * `dividend` is sorted on (quotient attrs major, divisor attrs minor),
///  * `divisor` is sorted on all its attributes and duplicate-free
/// (the plan builder arranges both via sorts with duplicate elimination).
///
/// Implementation follows §5.1: Open() consumes the entire divisor into an
/// in-memory list; Next() streams the dividend, advancing through the
/// divisor list as matching dividend tuples arrive, and produces a quotient
/// tuple each time the end of the divisor list is reached. Dividend tuples
/// matching no divisor tuple (e.g. a physics course in example 2) are
/// skipped; groups that miss any divisor tuple are abandoned early.
class NaiveDivisionOperator : public Operator {
 public:
  NaiveDivisionOperator(ExecContext* ctx,
                        std::unique_ptr<Operator> sorted_dividend,
                        std::unique_ptr<Operator> sorted_divisor,
                        std::vector<size_t> match_attrs,
                        std::vector<size_t> quotient_attrs);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status Close() override;

 private:
  Status AdvanceDividend();

  ExecContext* ctx_;
  std::unique_ptr<Operator> dividend_;
  std::unique_ptr<Operator> divisor_;
  std::vector<size_t> match_attrs_;
  std::vector<size_t> quotient_attrs_;
  Schema schema_;

  std::vector<Tuple> divisor_list_;
  Tuple current_;
  bool current_valid_ = false;
  Tuple group_start_;     ///< representative of the current quotient group
  bool in_group_ = false;
  size_t divisor_pos_ = 0;
  bool group_done_ = false;  ///< group emitted or failed; skip to next group
};

}  // namespace reldiv

#endif  // RELDIV_DIVISION_NAIVE_DIVISION_H_
