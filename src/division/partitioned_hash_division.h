#ifndef RELDIV_DIVISION_PARTITIONED_HASH_DIVISION_H_
#define RELDIV_DIVISION_PARTITIONED_HASH_DIVISION_H_

#include <memory>
#include <vector>

#include "division/division.h"
#include "exec/exec_context.h"
#include "exec/operator.h"

namespace reldiv {

/// Hash-division with hash-table-overflow management (§3.4): the inputs are
/// hash-partitioned into disjoint clusters spooled to temporary files and
/// processed one cluster per phase.
///
/// Quotient partitioning: the dividend is partitioned on the quotient
/// attrs; every phase divides one dividend cluster by the ENTIRE divisor,
/// whose table is built once and stays resident across phases. The final
/// quotient is the concatenation of the per-phase quotients.
///
/// Divisor partitioning: divisor and dividend are partitioned with the same
/// function on the divisor attrs. Each phase produces a quotient cluster
/// tagged with its phase number; a final collection phase divides the union
/// of the tagged clusters over the set of participating phase numbers —
/// "this problem is exactly the division problem again" — skipping step 1 of
/// hash-division because the phase tag directly indexes the bit map. Phases
/// whose divisor cluster is empty constrain nothing and are excluded from
/// the collection divisor.
class PartitionedHashDivisionOperator : public Operator {
 public:
  PartitionedHashDivisionOperator(ExecContext* ctx,
                                  const ResolvedDivision& resolved,
                                  const DivisionOptions& options);
  ~PartitionedHashDivisionOperator() override;

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Tuple* tuple, bool* has_next) override;
  Status NextBatch(TupleBatch* batch, bool* has_more) override;
  /// All phases run inside Open(); the output side just drains the buffered
  /// quotient, which is batch-native by construction.
  bool IsBatchNative() const override { return true; }
  Status Close() override;

  /// Number of phases actually executed (test hook).
  size_t phases_run() const { return phases_run_; }

  /// Partition passes executed over the spooled clusters.
  void ExportGauges(GaugeList* gauges) const override {
    gauges->emplace_back("phases_run", static_cast<double>(phases_run_));
  }

 private:
  Status RunQuotientPartitioned();
  Status RunDivisorPartitioned();
  Status RunCombined();

  ExecContext* ctx_;
  ResolvedDivision resolved_;
  DivisionOptions options_;
  Schema schema_;

  std::vector<Tuple> results_;
  size_t emit_pos_ = 0;
  size_t phases_run_ = 0;
};

}  // namespace reldiv

#endif  // RELDIV_DIVISION_PARTITIONED_HASH_DIVISION_H_
