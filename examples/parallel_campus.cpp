// Shared-nothing execution (§6): the "students who took all courses" query
// on a simulated four-node GAMMA-style machine. Shows both partitioning
// strategies (divisor replication vs. divisor partitioning with a
// collection site) and the network savings of Babb bit-vector filtering
// when the Transcript contains many rows outside the divisor.

#include <cstdio>

#include "reldiv/reldiv.h"

using namespace reldiv;

namespace {

Status Run() {
  // Generate the relation contents directly (the parallel engine takes
  // tuple batches — base relations are round-robin declustered over the
  // nodes, as in GAMMA).
  WorkloadSpec spec;
  spec.divisor_cardinality = 60;      // courses
  spec.quotient_candidates = 2500;    // students
  spec.candidate_completeness = 0.2;  // 500 students take everything
  spec.nonmatching_tuples = 40000;    // rows for courses outside the divisor
  spec.seed = 11;
  GeneratedWorkload campus = GenerateWorkload(spec);
  std::printf("Campus: %zu transcript rows over %llu courses; %zu students "
              "took all of them.\n\n",
              campus.dividend.size(),
              static_cast<unsigned long long>(spec.divisor_cardinality),
              campus.expected_quotient.size());

  for (PartitionStrategy strategy :
       {PartitionStrategy::kQuotient, PartitionStrategy::kDivisor}) {
    for (bool filter : {false, true}) {
      ParallelDivisionOptions options;
      options.num_nodes = 4;
      options.strategy = strategy;
      options.use_bit_vector_filter = filter;
      options.bit_vector_bits = 16 * 1024;
      ParallelHashDivisionEngine engine(options);
      RELDIV_ASSIGN_OR_RETURN(
          ParallelDivisionResult result,
          engine.Execute(campus.dividend_schema, campus.divisor_schema,
                         campus.dividend, campus.divisor, {1}));
      if (result.quotient.size() != campus.expected_quotient.size()) {
        return Status::Internal("parallel quotient size mismatch");
      }
      std::printf(
          "%-22s filter=%-3s | %zu students; slowest node %8.1f ms (model); "
          "network %7.1f KB in %llu messages; %llu tuples filtered\n",
          strategy == PartitionStrategy::kQuotient
              ? "quotient partitioning"
              : "divisor partitioning",
          filter ? "on" : "off", result.quotient.size(),
          result.max_node_cpu_ms,
          static_cast<double>(result.network_bytes) / 1024.0,
          static_cast<unsigned long long>(result.network_messages),
          static_cast<unsigned long long>(result.tuples_filtered));
    }
  }
  std::printf(
      "\nQuotient partitioning replicates the 60-course divisor to every\n"
      "node and then needs no synchronization at all; divisor partitioning\n"
      "ships each node's quotient cluster to a collection site that divides\n"
      "them over the node addresses (§3.4/§6). The bit-vector filter drops\n"
      "transcript rows whose course has no divisor record before they ever\n"
      "reach the network (§6, Babb 1979).\n");
  return Status::OK();
}

}  // namespace

int main() {
  Status status = Run();
  if (!status.ok()) {
    std::fprintf(stderr, "parallel_campus failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
