# Empty compiler generated dependencies file for operator_contract_test.
# This may be replaced when dependencies are built.
