#include "common/counters.h"

namespace reldiv {

std::string CpuCounters::ToString() const {
  return "comparisons=" + std::to_string(comparisons) +
         " hashes=" + std::to_string(hashes) +
         " moves=" + std::to_string(moves) +
         " bit_ops=" + std::to_string(bit_ops);
}

std::string CpuCounters::ToJson() const {
  return "{\"comparisons\":" + std::to_string(comparisons) +
         ",\"hashes\":" + std::to_string(hashes) +
         ",\"moves\":" + std::to_string(moves) +
         ",\"bit_ops\":" + std::to_string(bit_ops) + "}";
}

}  // namespace reldiv
