#include "obs/metrics.h"

#include <cstdio>

namespace reldiv {

namespace {

/// Saturating subtraction: children's inclusive figures are measured inside
/// the parent's, but clock granularity can make the sum overshoot by a tick.
uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

std::string FormatNs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

std::string FormatGauge(double value) {
  char buf[32];
  // Gauges are counts or ratios; print counts without a fraction.
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", value);
  }
  return buf;
}

}  // namespace

uint64_t MetricsNode::self_ns() const {
  uint64_t childs = 0;
  for (const MetricsNode* child : children_) {
    childs += child->metrics().total_ns();
  }
  return SatSub(metrics_.total_ns(), childs);
}

CpuCounters MetricsNode::self_cpu() const {
  CpuCounters self = metrics_.cpu;
  for (const MetricsNode* child : children_) {
    const CpuCounters& c = child->metrics().cpu;
    self.comparisons = SatSub(self.comparisons, c.comparisons);
    self.hashes = SatSub(self.hashes, c.hashes);
    self.moves = SatSub(self.moves, c.moves);
    self.bit_ops = SatSub(self.bit_ops, c.bit_ops);
  }
  return self;
}

DiskStats MetricsNode::self_io() const {
  DiskStats self = metrics_.io;
  for (const MetricsNode* child : children_) {
    const DiskStats& c = child->metrics().io;
    self.transfers = SatSub(self.transfers, c.transfers);
    self.seeks = SatSub(self.seeks, c.seeks);
    self.sectors_transferred =
        SatSub(self.sectors_transferred, c.sectors_transferred);
    self.read_transfers = SatSub(self.read_transfers, c.read_transfers);
    self.write_transfers = SatSub(self.write_transfers, c.write_transfers);
  }
  return self;
}

MetricsNode* QueryProfile::CreateNode(std::string label, size_t mark) {
  MutexLock lock(mu_);
  nodes_.push_back(std::make_unique<MetricsNode>(std::move(label)));
  MetricsNode* node = nodes_.back().get();
  // Bottom-up plan construction: every unsealed root created at or past the
  // mark was built while assembling this operator's inputs, so it belongs to
  // this subtree. Roots before the mark are finished sibling subtrees
  // awaiting a common ancestor.
  size_t begin = sealed_roots_ > mark ? sealed_roots_ : mark;
  if (begin > roots_.size()) begin = roots_.size();
  node->children_.assign(roots_.begin() + static_cast<long>(begin),
                         roots_.end());
  roots_.resize(begin);
  roots_.push_back(node);
  return node;
}

void QueryProfile::SealRoots() {
  MutexLock lock(mu_);
  sealed_roots_ = roots_.size();
}

void QueryProfile::Clear() {
  MutexLock lock(mu_);
  nodes_.clear();
  roots_.clear();
  sealed_roots_ = 0;
}

namespace {

void RenderNode(const MetricsNode& node, int depth, std::string* out) {
  const OperatorMetrics& m = node.metrics();
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += node.label();
  *out += ": tuples=" + std::to_string(m.tuples_out) +
          " batches=" + std::to_string(m.batches_out) +
          " calls(open/next/nextbatch/close)=" + std::to_string(m.opens) +
          "/" + std::to_string(m.next_calls) + "/" +
          std::to_string(m.next_batch_calls) + "/" +
          std::to_string(m.closes);
  *out += " time=" + FormatNs(m.total_ns()) +
          " (self " + FormatNs(node.self_ns()) + ")";
  const CpuCounters self_cpu = node.self_cpu();
  *out += " cpu[" + self_cpu.ToString() + "]";
  const DiskStats self_io = node.self_io();
  *out += " io[" + self_io.ToString() + "]";
  if (!m.gauges.empty()) {
    *out += " gauges{";
    bool first = true;
    for (const auto& [key, value] : m.gauges) {
      if (!first) *out += " ";
      first = false;
      *out += key + "=" + FormatGauge(value);
    }
    *out += "}";
  }
  *out += "\n";
  for (const MetricsNode* child : node.children()) {
    RenderNode(*child, depth + 1, out);
  }
}

void RenderNodeJson(const MetricsNode& node, std::string* out) {
  const OperatorMetrics& m = node.metrics();
  *out += "{\"label\":\"" + node.label() + "\"";
  *out += ",\"tuples_out\":" + std::to_string(m.tuples_out);
  *out += ",\"batches_out\":" + std::to_string(m.batches_out);
  *out += ",\"opens\":" + std::to_string(m.opens);
  *out += ",\"next_calls\":" + std::to_string(m.next_calls);
  *out += ",\"next_batch_calls\":" + std::to_string(m.next_batch_calls);
  *out += ",\"closes\":" + std::to_string(m.closes);
  *out += ",\"total_ns\":" + std::to_string(m.total_ns());
  *out += ",\"self_ns\":" + std::to_string(node.self_ns());
  *out += ",\"cpu\":" + m.cpu.ToJson();
  *out += ",\"self_cpu\":" + node.self_cpu().ToJson();
  *out += ",\"io\":" + m.io.ToJson();
  *out += ",\"self_io\":" + node.self_io().ToJson();
  if (!m.gauges.empty()) {
    *out += ",\"gauges\":{";
    bool first = true;
    for (const auto& [key, value] : m.gauges) {
      if (!first) *out += ",";
      first = false;
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      *out += "\"" + key + "\":" + buf;
    }
    *out += "}";
  }
  *out += ",\"children\":[";
  bool first = true;
  for (const MetricsNode* child : node.children()) {
    if (!first) *out += ",";
    first = false;
    RenderNodeJson(*child, out);
  }
  *out += "]}";
}

}  // namespace

std::string QueryProfile::ToString() const {
  // Rendering is a quiesced-phase read, but taking the structural lock is
  // free here and keeps the GUARDED_BY contract intact.
  MutexLock lock(mu_);
  std::string out;
  for (const MetricsNode* root : roots_) {
    RenderNode(*root, 0, &out);
  }
  return out;
}

std::string QueryProfile::ToJson() const {
  MutexLock lock(mu_);
  std::string out = "[";
  bool first = true;
  for (const MetricsNode* root : roots_) {
    if (!first) out += ",";
    first = false;
    RenderNodeJson(*root, &out);
  }
  out += "]";
  return out;
}

}  // namespace reldiv
