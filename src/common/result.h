#ifndef RELDIV_COMMON_RESULT_H_
#define RELDIV_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace reldiv {

/// A value-or-error carrier: either holds a `T` or a non-OK Status.
/// Mirrors arrow::Result. Constructing from an OK status is a programming
/// error (DCHECKed in debug builds, degraded to Internal otherwise).
/// [[nodiscard]] like Status: a dropped Result is a dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /* implicit */ Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  /* implicit */ Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    RELDIV_DCHECK(!status_.ok()) << "Result constructed from an OK status";
    if (status_.ok()) status_ = Status::Internal("Result built from OK");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RELDIV_DCHECK(ok()) << "value() on an error Result: "
                        << status_.ToString();
    return *value_;
  }
  T& value() & {
    RELDIV_DCHECK(ok()) << "value() on an error Result: "
                        << status_.ToString();
    return *value_;
  }
  T&& MoveValue() {
    RELDIV_DCHECK(ok()) << "MoveValue() on an error Result: "
                        << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Assign a Result's value to `lhs`, or propagate its error Status.
#define RELDIV_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = tmp.MoveValue();

#define RELDIV_ASSIGN_OR_RETURN(lhs, rexpr)                                  \
  RELDIV_ASSIGN_OR_RETURN_IMPL(RELDIV_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define RELDIV_CONCAT_INNER_(a, b) a##b
#define RELDIV_CONCAT_(a, b) RELDIV_CONCAT_INNER_(a, b)

}  // namespace reldiv

#endif  // RELDIV_COMMON_RESULT_H_
