file(REMOVE_RECURSE
  "CMakeFiles/selectivity_sweep.dir/selectivity_sweep.cc.o"
  "CMakeFiles/selectivity_sweep.dir/selectivity_sweep.cc.o.d"
  "selectivity_sweep"
  "selectivity_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selectivity_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
