#include "division/hash_division.h"

#include "common/bitmap.h"

namespace reldiv {

HashDivisionCore::HashDivisionCore(ExecContext* ctx,
                                   std::vector<size_t> match_attrs,
                                   std::vector<size_t> quotient_attrs,
                                   const DivisionOptions& options)
    : ctx_(ctx),
      match_attrs_(std::move(match_attrs)),
      quotient_attrs_(std::move(quotient_attrs)),
      options_(options),
      divisor_arena_(ctx->pool()) {}

Status HashDivisionCore::BuildDivisorTable(Operator* divisor,
                                           uint64_t expected_cardinality) {
  const uint64_t hint = expected_cardinality != 0
                            ? expected_cardinality
                            : options_.expected_divisor_cardinality;
  // Key = all divisor columns.
  RELDIV_RETURN_NOT_OK(divisor->Open());
  std::vector<Tuple> pending;  // buffered only when no hint sizes the table
  std::vector<size_t> all_cols;
  bool table_ready = false;
  auto make_table = [&](uint64_t cardinality, size_t arity) {
    all_cols.resize(arity);
    for (size_t i = 0; i < arity; ++i) all_cols[i] = i;
    divisor_table_ = std::make_unique<TupleHashTable>(
        ctx_, &divisor_arena_, all_cols,
        TupleHashTable::BucketsFor(cardinality == 0 ? 16 : cardinality));
    table_ready = true;
  };
  divisor_count_ = 0;

  auto insert = [&](Tuple tuple) -> Status {
    bool inserted = false;
    RELDIV_ASSIGN_OR_RETURN(TupleHashTable::Entry * entry,
                            divisor_table_->FindOrInsert(std::move(tuple),
                                                         &inserted));
    if (inserted) {
      // Assign the tuple's divisor number and count it (Figure 1, step 1);
      // a rejected duplicate gets no number (§3.3, point 5).
      entry->num = divisor_count_;
      divisor_count_++;
    }
    return Status::OK();
  };

  while (true) {
    Tuple tuple;
    bool has = false;
    RELDIV_RETURN_NOT_OK(divisor->Next(&tuple, &has));
    if (!has) break;
    if (!table_ready) {
      if (hint != 0) {
        make_table(hint, tuple.size());
      } else {
        pending.push_back(std::move(tuple));
        continue;
      }
    }
    RELDIV_RETURN_NOT_OK(insert(std::move(tuple)));
  }
  RELDIV_RETURN_NOT_OK(divisor->Close());
  if (!table_ready) {
    make_table(pending.size(), pending.empty() ? 1 : pending.front().size());
    for (Tuple& tuple : pending) {
      RELDIV_RETURN_NOT_OK(insert(std::move(tuple)));
    }
  }
  return Status::OK();
}

Status HashDivisionCore::BuildDivisorTableFromNumbered(
    const std::vector<std::pair<Tuple, uint64_t>>& numbered,
    uint64_t divisor_count) {
  std::vector<size_t> all_cols;
  if (!numbered.empty()) {
    all_cols.resize(numbered.front().first.size());
    for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;
  }
  divisor_table_ = std::make_unique<TupleHashTable>(
      ctx_, &divisor_arena_, all_cols,
      TupleHashTable::BucketsFor(numbered.empty() ? 16 : numbered.size()));
  for (const auto& [tuple, number] : numbered) {
    RELDIV_ASSIGN_OR_RETURN(TupleHashTable::Entry * entry,
                            divisor_table_->Insert(tuple));
    entry->num = number;
  }
  divisor_count_ = divisor_count;
  return Status::OK();
}

Status HashDivisionCore::ResetQuotientTable(uint64_t expected_cardinality) {
  quotient_arena_ = std::make_unique<Arena>(ctx_->pool());
  const uint64_t hint = expected_cardinality != 0
                            ? expected_cardinality
                            : options_.expected_quotient_cardinality;
  std::vector<size_t> stored_keys(quotient_attrs_.size());
  for (size_t i = 0; i < stored_keys.size(); ++i) stored_keys[i] = i;
  quotient_table_ = std::make_unique<TupleHashTable>(
      ctx_, quotient_arena_.get(), std::move(stored_keys),
      TupleHashTable::BucketsFor(hint == 0 ? 1024 : hint));
  return Status::OK();
}

Status HashDivisionCore::Consume(const Tuple& dividend,
                                 std::vector<Tuple>* early_out) {
  if (divisor_table_ == nullptr || quotient_table_ == nullptr) {
    return Status::Internal("hash-division tables not initialized");
  }
  // Figure 1, step 2: probe the divisor table on the divisor attributes.
  TupleHashTable::Entry* divisor_entry =
      divisor_table_->Find(dividend, match_attrs_);
  if (divisor_entry == nullptr) {
    return Status::OK();  // immediate discard — no matching divisor tuple
  }
  const uint64_t divisor_number = divisor_entry->num;

  // Probe / extend the quotient table on the quotient attributes.
  bool inserted = false;
  RELDIV_ASSIGN_OR_RETURN(
      TupleHashTable::Entry * quotient_entry,
      quotient_table_->FindOrInsert(dividend.Project(quotient_attrs_),
                                    &inserted));
  if (use_bitmaps()) {
    if (inserted) {
      // Create and clear the candidate's bit map (a word at a time).
      const size_t words = Bitmap::WordsForBits(divisor_count_);
      auto* storage = static_cast<uint64_t*>(
          quotient_arena_->Allocate(words * sizeof(uint64_t)));
      if (storage == nullptr) {
        return Status::ResourceExhausted(
            "hash-division: quotient bit map allocation failed");
      }
      quotient_entry->extra = storage;
      Bitmap bitmap = Bitmap::MapOnto(storage, divisor_count_);
      bitmap.ClearAll();
      ctx_->CountBitOps(words);
      quotient_entry->num = 0;  // early-output counter (§3.3)
    }
    Bitmap bitmap = Bitmap::MapOnto(quotient_entry->extra, divisor_count_);
    ctx_->CountBitOps(1);
    const bool was_clear = bitmap.Set(divisor_number);
    if (options_.early_output && was_clear) {
      quotient_entry->num++;
      ctx_->CountComparisons(1);
      if (quotient_entry->num == divisor_count_ && early_out != nullptr) {
        early_out->push_back(*quotient_entry->tuple);
      }
    }
  } else {
    // Counter variant (§3.3, point 6): valid only for duplicate-free
    // dividends; no bit map, just a counter per candidate.
    if (inserted) quotient_entry->num = 0;
    quotient_entry->num++;
    if (options_.early_output) {
      ctx_->CountComparisons(1);
      if (quotient_entry->num == divisor_count_ && early_out != nullptr) {
        early_out->push_back(*quotient_entry->tuple);
      }
    }
  }
  return Status::OK();
}

Status HashDivisionCore::EmitComplete(std::vector<Tuple>* out) {
  if (options_.early_output) return Status::OK();
  if (quotient_table_ == nullptr) return Status::OK();
  // Figure 1, step 3: scan all buckets for bit maps with no zero bit.
  Status status;
  quotient_table_->ForEach([&](TupleHashTable::Entry* entry) {
    if (use_bitmaps()) {
      Bitmap bitmap = Bitmap::MapOnto(entry->extra, divisor_count_);
      ctx_->CountBitOps(Bitmap::WordsForBits(divisor_count_));
      if (bitmap.AllSet()) out->push_back(*entry->tuple);
    } else {
      ctx_->CountComparisons(1);
      if (entry->num == divisor_count_) out->push_back(*entry->tuple);
    }
    return true;
  });
  return status;
}

HashDivisionOperator::HashDivisionOperator(
    ExecContext* ctx, std::unique_ptr<Operator> dividend,
    std::unique_ptr<Operator> divisor, std::vector<size_t> match_attrs,
    std::vector<size_t> quotient_attrs, const DivisionOptions& options)
    : ctx_(ctx),
      dividend_(std::move(dividend)),
      divisor_(std::move(divisor)),
      match_attrs_(match_attrs),
      quotient_attrs_(quotient_attrs),
      options_(options),
      schema_(dividend_->output_schema().Project(quotient_attrs_)) {}

Status HashDivisionOperator::Open() {
  results_.clear();
  emit_pos_ = 0;
  dividend_done_ = false;

  // A fresh core per Open: plans are re-openable and Close() releases the
  // previous run's table memory.
  core_ = std::make_unique<HashDivisionCore>(ctx_, match_attrs_,
                                             quotient_attrs_, options_);
  RELDIV_RETURN_NOT_OK(core_->BuildDivisorTable(divisor_.get()));
  RELDIV_RETURN_NOT_OK(core_->ResetQuotientTable());
  RELDIV_RETURN_NOT_OK(dividend_->Open());

  if (!options_.early_output) {
    // Stop-and-go: consume the dividend now; step 3 happens lazily below.
    while (true) {
      Tuple tuple;
      bool has = false;
      RELDIV_RETURN_NOT_OK(dividend_->Next(&tuple, &has));
      if (!has) break;
      RELDIV_RETURN_NOT_OK(core_->Consume(tuple, nullptr));
    }
    RELDIV_RETURN_NOT_OK(dividend_->Close());
    dividend_done_ = true;
    RELDIV_RETURN_NOT_OK(core_->EmitComplete(&results_));
  }
  return Status::OK();
}

Status HashDivisionOperator::Next(Tuple* tuple, bool* has_next) {
  while (true) {
    if (emit_pos_ < results_.size()) {
      *tuple = std::move(results_[emit_pos_++]);
      *has_next = true;
      return Status::OK();
    }
    if (dividend_done_) {
      *has_next = false;
      return Status::OK();
    }
    // Early-output mode: pull dividend tuples until one completes a
    // candidate or the input ends.
    results_.clear();
    emit_pos_ = 0;
    Tuple in;
    bool has = false;
    RELDIV_RETURN_NOT_OK(dividend_->Next(&in, &has));
    if (!has) {
      RELDIV_RETURN_NOT_OK(dividend_->Close());
      dividend_done_ = true;
      continue;
    }
    RELDIV_RETURN_NOT_OK(core_->Consume(in, &results_));
  }
}

Status HashDivisionOperator::Close() {
  Status status;
  if (!dividend_done_) {
    // Early-output consumer stopped before the stream ended.
    status = dividend_->Close();
    dividend_done_ = true;
  }
  core_.reset();
  results_.clear();
  return status;
}

}  // namespace reldiv
